"""The tuning driver: cache lookup, search dispatch, measured refinement.

:class:`MatmulTuner` is the piece ``compile_graph`` talks to.  For each
matmul problem it

1. consults the :class:`~repro.tuner.cache.TuningCache` (a hit skips all
   search work — the warmed-cache path),
2. on a miss, builds the :class:`~repro.tuner.space.TuningSpace`, seeds
   the search with the expert heuristic's pick, and runs the strategy
   :func:`~repro.tuner.search.choose_strategy` selects for the space
   size and budget,
3. in ``measured`` mode, re-ranks the model's top-K survivors (plus the
   heuristic pick) by actually compiling and executing them,
4. stores the winner back into the cache.

Every decision is announced to registered *tuning hooks* — mirrored on
the compiler's compile hooks — as a :class:`TuningResult` whose
``source`` field says whether the params came from the cache, a fresh
search, or the heuristic fallback.  Tests and benchmarks observe the
subsystem through these hooks instead of poking at internals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..dtypes import DType
from ..errors import HeuristicError
from ..microkernel.machine import MachineModel
from ..observability import get_registry, get_tracer
from ..templates.cost_model import candidate_cost
from ..templates.heuristics import HeuristicConstraints, select_matmul_params
from ..templates.params import MatmulParams
from .cache import TuningCache, TuningRecord, tuning_key
from .evaluate import MeasuredEvaluator, ModelEvaluator
from .search import SearchOutcome, choose_strategy
from .space import TuningSpace

#: Legal values of ``CompilerOptions.tuning``.
TUNING_MODES = ("off", "cached-only", "model", "measured")


@dataclass(frozen=True)
class TuningResult:
    """What the tuner decided for one matmul problem."""

    m: int
    n: int
    k: int
    batch: int
    dtype: DType
    params: MatmulParams
    #: Modeled cycles of ``params`` (comparable to ``heuristic_cost``).
    cost: float
    #: Modeled cycles of the expert heuristic's pick.
    heuristic_cost: float
    #: "cache" (warm hit), "search" (fresh tuning), or "heuristic" (fallback).
    source: str
    #: "model" or "measured" — which evaluator ranked the winner.
    evaluator: str = "model"
    #: Candidates scored to reach this decision (0 for cache hits).
    evaluations: int = 0
    #: Search strategy used ("" for cache hits / fallbacks).
    strategy: str = ""
    #: The cache key of this problem.
    key: str = ""
    #: Constraints the caller imposed, kept so the adaptive retuner can
    #: rebuild exactly the same tuning space later.
    constraints: Optional[HeuristicConstraints] = None

    @property
    def speedup_vs_heuristic(self) -> float:
        """Modeled heuristic/tuned cycle ratio (>= 1.0 means tuned wins)."""
        if self.cost <= 0:
            return 1.0
        return self.heuristic_cost / self.cost


_hooks: List[Callable[[TuningResult], None]] = []
_hooks_lock = threading.Lock()


def add_tuning_hook(hook: Callable[[TuningResult], None]) -> None:
    """Register a callable invoked with every :class:`TuningResult`."""
    with _hooks_lock:
        _hooks.append(hook)


def remove_tuning_hook(hook: Callable[[TuningResult], None]) -> None:
    with _hooks_lock:
        _hooks.remove(hook)


def _fire(result: TuningResult) -> None:
    with _hooks_lock:
        hooks = list(_hooks)
    for hook in hooks:
        hook(result)


class MatmulTuner:
    """Empirical autotuner for matmul template parameters.

    The ``selector`` property adapts the tuner to the compiler's
    parameter-selector protocol (the signature of
    ``select_matmul_params``), so passes ask the tuner exactly where
    they would have asked the heuristic.
    """

    def __init__(
        self,
        machine: MachineModel,
        cache: Optional[TuningCache] = None,
        mode: str = "model",
        budget: int = 512,
        seed: int = 0,
        measure_top_k: int = 3,
        measure_repeats: int = 3,
        executor: str = "compiled",
    ) -> None:
        if mode not in TUNING_MODES:
            raise ValueError(
                f"unknown tuning mode {mode!r}; expected one of {TUNING_MODES}"
            )
        self.machine = machine
        self.cache = cache if cache is not None else TuningCache()
        self.mode = mode
        self.executor = executor
        self.budget = max(1, budget)
        self.seed = seed
        self.measure_top_k = max(1, measure_top_k)
        self.measure_repeats = measure_repeats
        #: Every TuningResult this instance produced, in order.
        self.results: List[TuningResult] = []

    # -- the compiler-facing protocol -----------------------------------------

    @property
    def selector(self) -> Callable[..., MatmulParams]:
        """A drop-in replacement for ``select_matmul_params``."""

        def tuned_selector(
            m: int,
            n: int,
            k: int,
            dtype: DType,
            machine: MachineModel,
            batch: int = 1,
            constraints: Optional[HeuristicConstraints] = None,
        ) -> MatmulParams:
            return self.tune(
                m, n, k, dtype, batch=batch, constraints=constraints
            ).params

        return tuned_selector

    # -- the tuning pipeline ---------------------------------------------------

    def tune(
        self,
        m: int,
        n: int,
        k: int,
        dtype: DType,
        batch: int = 1,
        constraints: Optional[HeuristicConstraints] = None,
    ) -> TuningResult:
        tracer = get_tracer()
        if not tracer.enabled:
            return self._tune(m, n, k, dtype, batch, constraints)
        with tracer.span(
            f"tune:{m}x{k}x{n}",
            category="tuning",
            batch=batch,
            dtype=dtype.value,
            mode=self.mode,
        ) as span:
            result = self._tune(m, n, k, dtype, batch, constraints)
            span.set(
                source=result.source,
                evaluations=result.evaluations,
                speedup_vs_heuristic=result.speedup_vs_heuristic,
            )
            return result

    def _tune(
        self,
        m: int,
        n: int,
        k: int,
        dtype: DType,
        batch: int,
        constraints: Optional[HeuristicConstraints],
    ) -> TuningResult:
        key = tuning_key(
            m, n, k, dtype, self.machine, batch=batch,
            constraints=constraints, executor=self.executor,
        )
        record = self.cache.get(key)
        if record is not None:
            result = TuningResult(
                m=m, n=n, k=k, batch=batch, dtype=dtype,
                params=record.params,
                cost=record.cost,
                heuristic_cost=record.heuristic_cost,
                source="cache",
                evaluator=record.evaluator,
                evaluations=0,
                key=key,
                constraints=constraints,
            )
            return self._emit(result)

        heuristic = select_matmul_params(
            m, n, k, dtype, self.machine, batch=batch, constraints=constraints
        )
        heuristic_cost = candidate_cost(
            heuristic, dtype, self.machine, original_sizes=(m, n, k)
        )
        if self.mode in ("off", "cached-only"):
            # No fresh search: serve the heuristic, do not pollute the cache.
            result = TuningResult(
                m=m, n=n, k=k, batch=batch, dtype=dtype,
                params=heuristic,
                cost=heuristic_cost,
                heuristic_cost=heuristic_cost,
                source="heuristic",
                key=key,
                constraints=constraints,
            )
            return self._emit(result)

        try:
            outcome = self._search(m, n, k, dtype, batch, constraints, heuristic)
        except HeuristicError:
            result = TuningResult(
                m=m, n=n, k=k, batch=batch, dtype=dtype,
                params=heuristic,
                cost=heuristic_cost,
                heuristic_cost=heuristic_cost,
                source="heuristic",
                key=key,
                constraints=constraints,
            )
            return self._emit(result)

        params, model_cost, evaluator_name, measured_seconds, evaluations, \
            strategy = outcome
        self.cache.put(
            key,
            TuningRecord(
                params=params,
                cost=model_cost,
                heuristic_cost=heuristic_cost,
                evaluator=evaluator_name,
                measured_seconds=measured_seconds,
                evaluations=evaluations,
            ),
        )
        result = TuningResult(
            m=m, n=n, k=k, batch=batch, dtype=dtype,
            params=params,
            cost=model_cost,
            heuristic_cost=heuristic_cost,
            source="search",
            evaluator=evaluator_name,
            evaluations=evaluations,
            strategy=strategy,
            key=key,
            constraints=constraints,
        )
        return self._emit(result)

    def retune(
        self,
        m: int,
        n: int,
        k: int,
        dtype: DType,
        batch: int = 1,
        constraints: Optional[HeuristicConstraints] = None,
        seed_params: Optional[MatmulParams] = None,
        budget: Optional[int] = None,
        repeats: Optional[int] = None,
    ) -> TuningResult:
        """Re-search a problem the cache already answers, and overwrite it.

        The adaptive retuner calls this when live latency says the cached
        decision went stale.  Unlike :meth:`tune` it skips the cache
        lookup, seeds the search with the *incumbent's* params (so the
        search explores around the current answer as well as the
        heuristic's), always re-ranks finalists with the
        :class:`MeasuredEvaluator` — drift is by definition something the
        model missed — and writes the winner back through
        :meth:`TuningCache.update`, superseding the stale record.
        ``budget`` / ``repeats`` override the compile-time settings so a
        background retune can spend a different (usually smaller) budget
        than the original search.
        """
        key = tuning_key(
            m, n, k, dtype, self.machine, batch=batch,
            constraints=constraints, executor=self.executor,
        )
        heuristic = select_matmul_params(
            m, n, k, dtype, self.machine, batch=batch, constraints=constraints
        )
        heuristic_cost = candidate_cost(
            heuristic, dtype, self.machine, original_sizes=(m, n, k)
        )
        space = TuningSpace(
            m, n, k, dtype, self.machine, batch=batch, constraints=constraints
        )
        model = ModelEvaluator(m, n, k, dtype, self.machine, batch=batch)
        search_budget = max(1, budget) if budget is not None else self.budget
        strategy = choose_strategy(space, search_budget, seed=self.seed)
        seeds = [heuristic]
        if seed_params is not None and seed_params not in seeds:
            seeds.append(seed_params)
        outcome: SearchOutcome = strategy.run(space, model, seeds=seeds)

        finalists = outcome.top(self.measure_top_k)
        for extra in seeds:
            if extra not in finalists:
                finalists.append(extra)
        measured = MeasuredEvaluator(
            m, n, k, dtype, self.machine, batch=batch,
            repeats=repeats if repeats is not None else self.measure_repeats,
            seed=self.seed,
        )
        best_params, best_seconds = outcome.params, None
        for candidate in finalists:
            seconds = measured.score(candidate)
            if seconds is None:
                continue
            if best_seconds is None or seconds < best_seconds:
                best_params, best_seconds = candidate, seconds
        if best_seconds is None:
            evaluator_name, measured_seconds = "model", 0.0
            evaluations = outcome.evaluations
        else:
            evaluator_name = "measured"
            measured_seconds = best_seconds
            evaluations = outcome.evaluations + measured.evaluations
        best_cost = candidate_cost(
            best_params, dtype, self.machine, original_sizes=(m, n, k)
        )
        self.cache.update(
            key,
            TuningRecord(
                params=best_params,
                cost=best_cost,
                heuristic_cost=heuristic_cost,
                evaluator=evaluator_name,
                measured_seconds=measured_seconds,
                evaluations=evaluations,
            ),
        )
        result = TuningResult(
            m=m, n=n, k=k, batch=batch, dtype=dtype,
            params=best_params,
            cost=best_cost,
            heuristic_cost=heuristic_cost,
            source="retune",
            evaluator=evaluator_name,
            evaluations=evaluations,
            strategy=outcome.strategy,
            key=key,
            constraints=constraints,
        )
        return self._emit(result)

    def _search(
        self,
        m: int,
        n: int,
        k: int,
        dtype: DType,
        batch: int,
        constraints: Optional[HeuristicConstraints],
        heuristic: MatmulParams,
    ):
        space = TuningSpace(
            m, n, k, dtype, self.machine, batch=batch, constraints=constraints
        )
        model = ModelEvaluator(m, n, k, dtype, self.machine, batch=batch)
        strategy = choose_strategy(space, self.budget, seed=self.seed)
        outcome: SearchOutcome = strategy.run(
            space, model, seeds=[heuristic]
        )
        params, model_cost = outcome.params, outcome.cost
        evaluations = outcome.evaluations
        if self.mode != "measured":
            return params, model_cost, "model", 0.0, evaluations, \
                outcome.strategy

        # Measured refinement: re-rank the model's top-K plus the
        # heuristic pick by real compile-and-execute wall time.
        finalists = outcome.top(self.measure_top_k)
        if heuristic not in finalists:
            finalists.append(heuristic)
        measured = MeasuredEvaluator(
            m, n, k, dtype, self.machine, batch=batch,
            repeats=self.measure_repeats, seed=self.seed,
        )
        best_params, best_seconds = params, None
        for candidate in finalists:
            seconds = measured.score(candidate)
            if seconds is None:
                continue
            if best_seconds is None or seconds < best_seconds:
                best_params, best_seconds = candidate, seconds
        if best_seconds is None:
            # Nothing survived real lowering: trust the model ranking.
            return params, model_cost, "model", 0.0, evaluations, \
                outcome.strategy
        best_cost = candidate_cost(
            best_params, dtype, self.machine, original_sizes=(m, n, k)
        )
        return best_params, best_cost, "measured", best_seconds, \
            evaluations + measured.evaluations, outcome.strategy

    def _emit(self, result: TuningResult) -> TuningResult:
        self.results.append(result)
        registry = get_registry()
        registry.counter("tuning.results", source=result.source).inc()
        if result.evaluations:
            registry.histogram("tuning.evaluations").observe(
                result.evaluations
            )
        _fire(result)
        return result
