"""The batch-reduce GEMM microkernel.

Interface follows LIBXSMM / TPP and the paper's Figure 2:

    C[0:MB, 0:NB] += sum over bs of A[bs] x B[bs]

where A is a batch of ``[MB, KB]`` blocks and B a batch of ``[NB, KB]``
blocks in the blocked-B layout (``b_transposed=True``) or ``[KB, NB]``
blocks in plain layout.  Int8 inputs accumulate in int32 (VNNI semantics);
floating inputs accumulate in float32.

The compiler only chooses block sizes and batch; everything inside this call
is the "expert-tuned" black box the hybrid approach relies on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError


def batch_reduce_gemm(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    b_transposed: bool = True,
    initialize: bool = False,
) -> None:
    """Accumulate a batch-reduce GEMM into ``c`` in place.

    Args:
        c: Accumulator block ``[MB, NB]`` (float32 or int32).
        a: Batch of A blocks ``[BS, MB, KB]``.
        b: Batch of B blocks — ``[BS, NB, KB]`` if ``b_transposed`` else
            ``[BS, KB, NB]``.
        b_transposed: Whether B blocks are in the swapped-inner blocked
            layout (the layout the paper's templates produce).
        initialize: Zero the accumulator first (``beta = 0`` GEMM).

    Raises:
        ExecutionError: on shape or dtype mismatches.
    """
    if a.ndim != 3 or b.ndim != 3:
        raise ExecutionError(
            f"brgemm operands must be 3-D batches, got a{a.shape} b{b.shape}"
        )
    if a.shape[0] != b.shape[0]:
        raise ExecutionError(
            f"brgemm batch mismatch: a has {a.shape[0]}, b has {b.shape[0]}"
        )
    mb, kb = a.shape[1], a.shape[2]
    if b_transposed:
        nb, kb_b = b.shape[1], b.shape[2]
    else:
        kb_b, nb = b.shape[1], b.shape[2]
    if kb != kb_b:
        raise ExecutionError(
            f"brgemm K mismatch: a blocks [{mb},{kb}], b blocks "
            f"{'[NB,KB]' if b_transposed else '[KB,NB]'}={list(b.shape[1:])}"
        )
    if c.shape != (mb, nb):
        raise ExecutionError(
            f"brgemm accumulator shape {c.shape} != ({mb}, {nb})"
        )

    if a.dtype in (np.int8, np.uint8):
        if c.dtype != np.int32:
            raise ExecutionError(
                f"int8 brgemm needs an int32 accumulator, got {c.dtype}"
            )
        acc_dtype = np.int32
    else:
        if c.dtype != np.float32:
            raise ExecutionError(
                f"float brgemm needs a float32 accumulator, got {c.dtype}"
            )
        acc_dtype = np.float32
    # asarray: widen int8 operands to the accumulator dtype, but never
    # copy operands already in it (astype would copy unconditionally).
    acc_a = np.asarray(a, dtype=acc_dtype)
    acc_b = np.asarray(b, dtype=acc_dtype)

    if b_transposed:
        partial = np.einsum("bmk,bnk->mn", acc_a, acc_b)
    else:
        partial = np.einsum("bmk,bkn->mn", acc_a, acc_b)

    if initialize:
        c[...] = partial.astype(c.dtype, copy=False)
    else:
        c += partial.astype(c.dtype, copy=False)


def brgemm_flops(mb: int, nb: int, kb: int, batch: int) -> int:
    """Multiply-accumulate operation count of one microkernel invocation."""
    return 2 * mb * nb * kb * batch
