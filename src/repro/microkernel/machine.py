"""CPU machine model.

Describes the hardware facts the compiler's heuristics and the performance
model need: core count, per-dtype compute throughput, the cache hierarchy
and the overhead constants (parallel-region barrier, library call).  The
default instance approximates the Intel Xeon Platinum 8358 (Ice Lake SP,
32 cores, AVX-512 + VNNI) used in the paper's evaluation.

The absolute numbers matter less than the ratios between them; the
performance model reproduces the *shape* of the paper's results (who wins,
by what factor) from these ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dtypes import DType


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data cache hierarchy.

    Attributes:
        name: ``"L1"``, ``"L2"``, ``"L3"`` or ``"DRAM"``.
        size_bytes: Capacity; per core for private levels, total for shared.
        bandwidth_bytes_per_cycle: Sustained load bandwidth per core when
            data resides at this level.
        shared: Whether the level is shared among all cores.
    """

    name: str
    size_bytes: int
    bandwidth_bytes_per_cycle: float
    shared: bool = False


@dataclass(frozen=True)
class MachineModel:
    """The target CPU, as seen by heuristics and the performance model."""

    name: str
    num_cores: int
    frequency_hz: float
    #: Peak multiply-accumulate throughput per core per cycle, by dtype.
    flops_per_cycle: Dict[DType, float]
    #: Vector register width in bytes (AVX-512: 64).
    vector_bytes: int
    #: Number of architectural vector registers (zmm0-31).
    num_vector_registers: int
    #: Cache hierarchy ordered fastest-first, ending with DRAM.
    caches: Tuple[CacheLevel, ...]
    #: Cycles for one parallel-region launch/teardown across all cores
    #: (fork-join barrier plus per-region cache and thread ramp).
    barrier_cycles: float
    #: Cycles of framework/library overhead per primitive API call
    #: (argument checking, dispatch, scratchpad setup).
    api_call_cycles: float

    def cache(self, name: str) -> CacheLevel:
        for level in self.caches:
            if level.name == name:
                return level
        raise KeyError(f"machine {self.name} has no cache level {name!r}")

    @property
    def l1(self) -> CacheLevel:
        return self.caches[0]

    @property
    def dram(self) -> CacheLevel:
        return self.caches[-1]

    def vector_lanes(self, dtype: DType) -> int:
        """SIMD lanes per vector register for a dtype."""
        return self.vector_bytes // dtype.size

    def peak_flops(self, dtype: DType) -> float:
        """Machine-wide peak multiply-accumulate ops per second."""
        return (
            self.flops_per_cycle[dtype] * self.num_cores * self.frequency_hz
        )

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz


#: Approximation of the Intel Xeon Platinum 8358 used in the paper.
#:
#: * 32 cores, 2.6 GHz nominal.
#: * AVX-512 fp32: 2 FMA units x 16 lanes x 2 ops  = 64 flops/cycle/core.
#: * VNNI int8: 4x the fp32 MAC rate               = 256 ops/cycle/core.
#: * 48 KiB L1D and 1.25 MiB L2 per core, 48 MiB shared L3.
#: * DRAM: 8-channel DDR4-3200, ~200 GB/s machine-wide; expressed per core.
XEON_8358 = MachineModel(
    name="xeon-8358",
    num_cores=32,
    frequency_hz=2.6e9,
    flops_per_cycle={
        DType.f32: 64.0,
        DType.bf16: 128.0,
        DType.s8: 256.0,
        DType.u8: 256.0,
    },
    vector_bytes=64,
    num_vector_registers=32,
    caches=(
        CacheLevel("L1", 48 * 1024, 128.0),
        CacheLevel("L2", 1280 * 1024, 48.0),
        CacheLevel("L3", 48 * 1024 * 1024, 16.0, shared=True),
        CacheLevel("DRAM", 1 << 62, 2.4, shared=True),
    ),
    barrier_cycles=12000.0,
    api_call_cycles=2500.0,
)
