"""Microkernel substrate: batch-reduce GEMM and the CPU machine model.

The paper builds on a hand-tuned, JIT-compiled batch-reduce GEMM microkernel
(LIBXSMM-style).  We reproduce its *interface and semantics* with numpy —
the compiler treats the microkernel as a black box either way — and pair it
with a machine description used by the heuristics and the performance model.
"""

from .brgemm import batch_reduce_gemm, brgemm_flops
from .machine import CacheLevel, MachineModel, XEON_8358

__all__ = [
    "batch_reduce_gemm",
    "brgemm_flops",
    "CacheLevel",
    "MachineModel",
    "XEON_8358",
]
