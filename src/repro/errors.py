"""Typed exceptions raised across the compiler.

Every error that a user of the library can trigger through the public API is
an instance of :class:`GraphCompilerError`, so callers can catch one type.
Internal invariant violations use plain ``AssertionError`` and indicate bugs.
"""

from __future__ import annotations


class GraphCompilerError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphValidationError(GraphCompilerError):
    """The input Graph IR is malformed (cycles, dangling tensors, ...)."""


class ShapeInferenceError(GraphCompilerError):
    """Operand shapes are incompatible for an op, or a shape is unknown."""


class DataTypeError(GraphCompilerError):
    """Operand data types are invalid or incompatible for an op."""


class UnsupportedOpError(GraphCompilerError):
    """An op kind is not registered or not supported by a pass/backend."""


class LoweringError(GraphCompilerError):
    """Graph IR could not be lowered to Tensor IR."""


class TensorIRError(GraphCompilerError):
    """Malformed Tensor IR (unknown symbol, type mismatch, bad loop)."""


class ExecutionError(GraphCompilerError):
    """Runtime failure while executing a compiled partition."""


class SessionClosedError(GraphCompilerError, RuntimeError):
    """A request reached a session/engine after (or during) ``close()``.

    Subclasses :class:`RuntimeError` so callers that guarded the serving
    layer with ``except RuntimeError`` keep working.
    """


class TransportError(GraphCompilerError):
    """Shared-memory tensor transport failure (lease, attach, layout)."""


class SlotOverflowError(TransportError):
    """A request's tensors do not fit one shared-memory ring slot."""


class WorkerCrashError(GraphCompilerError):
    """A sharded-serving worker process died while holding requests."""


class LayoutError(GraphCompilerError):
    """Invalid memory layout or an impossible layout conversion."""


class HeuristicError(GraphCompilerError):
    """Template parameter selection failed for a tunable op."""
