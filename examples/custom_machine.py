#!/usr/bin/env python
"""Retargeting: compile the same graph for a different machine model.

The expert heuristic consumes a MachineModel — core count, per-dtype
throughput, cache sizes, overheads — so retargeting is a data change, not
a code change.  This example defines a laptop-class 8-core machine and
shows how the chosen template parameters and the modeled performance
differ from the 32-core Xeon.

Run:  python examples/custom_machine.py
"""

from repro import DType, XEON_8358, compile_graph
from repro.dtypes import DType as DT
from repro.microkernel.machine import CacheLevel, MachineModel
from repro.perfmodel import MachineSimulator, specs_for_partition
from repro.workloads import build_mlp_graph

LAPTOP_8C = MachineModel(
    name="laptop-8c",
    num_cores=8,
    frequency_hz=3.2e9,
    flops_per_cycle={
        DT.f32: 32.0,   # AVX2-class: 2 FMA x 8 lanes x 2
        DT.bf16: 32.0,
        DT.s8: 64.0,    # VNNI-on-AVX2-width
        DT.u8: 64.0,
    },
    vector_bytes=32,
    num_vector_registers=16,
    caches=(
        CacheLevel("L1", 48 * 1024, 64.0),
        CacheLevel("L2", 1280 * 1024, 32.0),
        CacheLevel("L3", 24 * 1024 * 1024, 12.0, shared=True),
        CacheLevel("DRAM", 1 << 62, 4.0, shared=True),
    ),
    barrier_cycles=4000.0,   # fewer threads synchronize faster
    api_call_cycles=2500.0,
)


def describe(machine: MachineModel) -> None:
    graph = build_mlp_graph("MLP_1", 128, DType.f32)
    partition = compile_graph(graph, machine=machine)
    print(f"\n== {machine.name} ({machine.num_cores} cores) ==")
    for message in partition.lowered.ctx.log:
        if "layout: matmul" in message:
            print(" ", message.split("layout: ")[1])
    specs, warm = specs_for_partition(partition, machine)
    sim = MachineSimulator(machine)
    for tensor, nbytes in warm:
        sim.warm(tensor, nbytes)
    sim.run_all(specs)
    timing = sim.run_all(specs)
    cycles = timing.total_cycles
    print(
        f"  modeled: {cycles:,.0f} cycles = "
        f"{timing.seconds(machine) * 1e6:.1f} us"
    )


def main() -> None:
    describe(XEON_8358)
    describe(LAPTOP_8C)
    print(
        "\nNote how the parallel decomposition (MPN/NPN) shrinks with the "
        "core count\nand the block sizes adapt to the narrower vectors."
    )


if __name__ == "__main__":
    main()
