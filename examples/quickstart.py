#!/usr/bin/env python
"""Quickstart: compile and run a small MLP.

Builds a two-layer MLP graph with the public GraphBuilder API, compiles it
for the default Xeon-8358 machine model, executes it twice (the first call
preprocesses the weights, the second reuses the cache) and shows the
optimized Graph IR and generated Tensor IR.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DType, GraphBuilder, compile_graph, format_graph
from repro.tensor_ir import format_function


def main() -> None:
    # 1. Describe the computation: y = relu(relu(x @ w0) @ w1).
    b = GraphBuilder("quickstart_mlp")
    x = b.input("x", DType.f32, (64, 256))
    w0 = b.constant("w0", dtype=DType.f32, shape=(256, 128))
    w1 = b.constant("w1", dtype=DType.f32, shape=(128, 64))
    hidden = b.relu(b.matmul(x, w0))
    out = b.relu(b.matmul(hidden, w1))
    b.output(out)
    graph = b.finish()

    print("== input graph ==")
    print(format_graph(graph))

    # 2. Compile. The weights are "runtime constants": their buffers arrive
    # at the first execution and are preprocessed (blocked layout) once.
    partition = compile_graph(graph)
    print("\n== compiled ==")
    print("inputs:  ", partition.input_names)
    print("weights: ", partition.weight_names)
    print("outputs: ", partition.output_names)
    print("arena:   ", partition.arena_size, "bytes")

    # 3. Execute. Weights are needed on the first call only.
    rng = np.random.RandomState(0)
    data = {
        "x": rng.randn(64, 256).astype(np.float32),
        "w0": (rng.randn(256, 128) * 0.1).astype(np.float32),
        "w1": (rng.randn(128, 64) * 0.1).astype(np.float32),
    }
    first = partition.execute(data)
    second = partition.execute({"x": data["x"]})  # cached weights
    result = list(second.values())[0]

    expected = np.maximum(
        np.maximum(data["x"] @ data["w0"], 0) @ data["w1"], 0
    )
    print("\nmax |compiled - numpy| =", np.abs(result - expected).max())
    assert np.allclose(result, expected, rtol=1e-4, atol=1e-4)

    # 4. Peek at the generated Tensor IR for the first fused op.
    module = partition.lowered.module
    name = next(n for n in module.functions if n != "main")
    print("\n== Tensor IR of", name, "==")
    print(format_function(module.functions[name]))


if __name__ == "__main__":
    main()
