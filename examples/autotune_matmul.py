#!/usr/bin/env python
"""Autotuning template parameters instead of trusting the heuristic.

The compiler's expert heuristic picks matmul template parameters
analytically (paper Figure 3).  `CompilerOptions(tuning="model")`
replaces that single pick with an empirical search over the whole valid
parameter space, scored by the same cost model — and caches the winner
in a persistent `TuningCache`, so each (shape, dtype, machine) is tuned
exactly once.

This example tunes an MLP layer, shows the heuristic-vs-tuned configs
side by side, then recompiles to demonstrate the warm-cache path (zero
search work the second time).

Run:  PYTHONPATH=src python examples/autotune_matmul.py
"""

import numpy as np

from repro import (
    CompilerOptions,
    DType,
    GraphBuilder,
    add_tuning_hook,
    compile_graph,
    remove_tuning_hook,
)
from repro.tuner import reset_tuning_caches

M, K, N = 64, 1024, 1024


def build_graph():
    b = GraphBuilder("mlp_layer")
    x = b.input("x", DType.f32, (M, K))
    w = b.constant("w", dtype=DType.f32, shape=(K, N))
    b.output(b.relu(b.matmul(x, w)))
    return b.finish()


def main() -> None:
    reset_tuning_caches()  # a clean slate so the demo is reproducible
    decisions = []
    add_tuning_hook(decisions.append)
    options = CompilerOptions(tuning="model", tuning_budget=256)

    try:
        print(f"== tuning a {M}x{K} @ {K}x{N} f32 matmul ==")
        partition = compile_graph(build_graph(), options=options)
        for r in decisions:
            print(f"  source:    {r.source} ({r.strategy}, "
                  f"{r.evaluations} candidates scored)")
            print(f"  heuristic: {r.heuristic_cost:12,.0f} modeled cycles")
            print(f"  tuned:     {r.cost:12,.0f} modeled cycles "
                  f"({r.speedup_vs_heuristic:.3f}x)")
            print(f"  params:    {r.params.describe()}")

        decisions.clear()
        print("\n== recompiling: the TuningCache is warm ==")
        compile_graph(build_graph(), options=options)
        for r in decisions:
            print(f"  source: {r.source} "
                  f"({r.evaluations} candidates scored)")
        assert all(r.source == "cache" for r in decisions)

        # The tuned partition computes the same function.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((M, K)).astype(np.float32)
        w = rng.standard_normal((K, N)).astype(np.float32)
        out = partition.execute({"x": x, "w": w})
        out = list(out.values())[0] if isinstance(out, dict) else out
        err = float(np.abs(out - np.maximum(x @ w, 0)).max())
        print(f"\nmax |compiled - numpy| = {err:.2e}  ok")
    finally:
        remove_tuning_hook(decisions.append)
        reset_tuning_caches()


if __name__ == "__main__":
    main()
