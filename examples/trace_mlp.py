#!/usr/bin/env python
"""Trace an MLP through compile and execute, then export a Chrome trace.

Enables the global span tracer, compiles a two-layer MLP (every Graph IR
and Tensor IR pass records a span), executes it once (brgemm microkernel
invocations, packs, parallel loops and allocations record spans and
metrics), prints the top-passes / top-ops report, and writes a Chrome
trace-event JSON you can open in chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/trace_mlp.py [trace.json]
"""

import sys
import tempfile

import numpy as np

from repro import (
    DType,
    GraphBuilder,
    compile_graph,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    write_chrome_trace,
)
from repro.observability import format_report, validate_chrome_trace_file


def main() -> None:
    # 1. Turn on the tracer. Until now every span was a shared no-op;
    # from here on compile and runtime layers record real spans.
    tracer = enable_tracing()
    registry = get_registry()

    # 2. Compile: one span per Graph IR pass (with before/after op counts),
    # per Tensor IR pass, and per stage (graph_passes, lowering, tensor_ir).
    b = GraphBuilder("traced_mlp")
    x = b.input("x", DType.f32, (64, 256))
    w0 = b.constant("w0", dtype=DType.f32, shape=(256, 128))
    w1 = b.constant("w1", dtype=DType.f32, shape=(128, 64))
    b.output(b.relu(b.matmul(b.relu(b.matmul(x, w0)), w1)))
    partition = compile_graph(b.finish())

    # 3. Execute: microkernel spans carry modeled cycles (from the cost
    # descriptor) next to measured wall time, so the report can show where
    # the cost model is optimistic.
    rng = np.random.RandomState(0)
    feed = {
        "x": rng.randn(64, 256).astype(np.float32),
        "w0": (rng.randn(256, 128) * 0.1).astype(np.float32),
        "w1": (rng.randn(128, 64) * 0.1).astype(np.float32),
    }
    _, stats = partition.execute_with_stats(feed)
    print(f"executed: {stats.brgemm_calls} brgemm calls, "
          f"{stats.pack_stmts} packs, {stats.parallel_loops} parallel loops")

    # 4. The human-readable report: top passes, top ops, brgemm
    # modeled-vs-measured reconciliation, and the raw metrics registry.
    print()
    print(format_report(tracer, registry))

    # 5. Export the Chrome trace and check it against the schema the
    # exporter promises (the CI trace-smoke step runs the same validator).
    path = sys.argv[1] if len(sys.argv) > 1 else tempfile.mktemp(".json")
    document = write_chrome_trace(path, tracer, registry)
    problems = validate_chrome_trace_file(path)
    print(f"\nwrote {len(document['traceEvents'])} trace events to {path}")
    print(f"schema check: {'ok' if not problems else problems}")
    print("open in chrome://tracing or https://ui.perfetto.dev")

    disable_tracing()


if __name__ == "__main__":
    main()
