#!/usr/bin/env python
"""Serving the DLRM MLP through an InferenceSession.

Builds one `InferenceSession` over the paper's MLP_1 workload (the MLPerf
DLRM bottom MLP), binds the weights once, and serves mixed batch sizes
from several threads.  The session rounds each request up to a shape
bucket (compiling once per bucket, single-flight), pads the activations,
and slices the outputs back — so 32 requests across 4 threads need only
3 compilations.

Run:  PYTHONPATH=src python examples/serving_mlp.py
"""

import threading

import numpy as np

from repro import DType, compile_graph
from repro.service import InferenceSession, PartitionCache, format_stats
from repro.workloads import build_mlp_graph, make_mlp_inputs

BUCKETS = (32, 64, 128)
N_THREADS = 4
REQUESTS_PER_THREAD = 8


def main() -> None:
    # Weights are bound once at session construction, exactly like the
    # paper's runtime-constant contract for CompiledPartition.
    weights = {
        name: array
        for name, array in make_mlp_inputs("MLP_1", 32).items()
        if name.startswith("w")
    }
    cache = PartitionCache()
    session = InferenceSession.for_workload(
        "MLP_1",
        dtype=DType.f32,
        weights=weights,
        cache=cache,
        batch_buckets=BUCKETS,
    )

    rng = np.random.RandomState(0)
    plans = []
    for _ in range(N_THREADS):
        batches = rng.randint(4, BUCKETS[-1] + 1, REQUESTS_PER_THREAD)
        plans.append(
            [
                (int(b), rng.randn(int(b), 13).astype(np.float32))
                for b in batches
            ]
        )

    errors = []

    def worker(plan):
        try:
            for batch, x in plan:
                out = list(session.run({"x": x}).values())[0]
                assert out.shape == (batch, 128), out.shape
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(p,)) for p in plans]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors

    # Spot-check one padded request against a direct one-shot compile.
    x = rng.randn(20, 13).astype(np.float32)
    served = list(session.run({"x": x}).values())[0]
    direct = list(
        compile_graph(build_mlp_graph("MLP_1", 20)).execute(
            {**weights, "x": x}
        ).values()
    )[0]
    print(
        "padded-bucket vs direct compile: max |diff| ="
        f" {np.abs(served - direct).max():.2e}"
    )

    stats = session.stats()
    total = N_THREADS * REQUESTS_PER_THREAD + 1
    print(
        f"served {total} requests over buckets {BUCKETS} "
        f"with {stats.compiles} compilations"
    )
    print(f"cache hit rate: {stats.hit_rate:.1%}")
    print("per-bucket compile counts:")
    for sig in sorted(stats.signatures, key=lambda s: s.label):
        print(
            f"  {sig.label:<16} compiles={sig.compiles} "
            f"executes={sig.executes} compile_s={sig.compile_seconds:.3f}"
        )
    print()
    print(format_stats(stats))
    assert stats.compiles == len(BUCKETS)
    print("ok")


if __name__ == "__main__":
    main()
