#!/usr/bin/env python
"""Dynamic micro-batching: coalescing concurrent requests into one kernel.

Serves the paper's MLP_1 workload (the MLPerf DLRM bottom MLP) through two
sessions sharing one PartitionCache:

* an **unbatched** session — every request executes the partition alone,
  padded up to its shape bucket;
* a **batched** session (``batching="on"``) — a `BatchingEngine` holds each
  request briefly in a per-bucket queue, concatenates up to ``max_batch``
  concurrent requests along the batch axis, executes the bucket partition
  once, and splits the outputs back to the callers' futures.

Both paths run the *same* compiled partition, so results are bit-identical
— verified below — while the batched path fills the bucket with useful
rows instead of padding and amortizes dispatch across the window.

Run:  PYTHONPATH=src python examples/serving_batched.py
"""

import threading
import time

import numpy as np

from repro.service import (
    InferenceSession,
    PartitionCache,
    format_batching_stats,
)
from repro.workloads import make_mlp_inputs

BUCKET = 32
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 6


def serve(session, plans):
    """Replay the request plans from N_CLIENTS threads; return outputs."""
    outputs = [[None] * len(plan) for plan in plans]
    errors = []
    barrier = threading.Barrier(len(plans) + 1)

    def client(ci):
        try:
            barrier.wait()
            for ri, x in enumerate(plans[ci]):
                outputs[ci][ri] = next(iter(session.run({"x": x}).values()))
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(ci,))
        for ci in range(len(plans))
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return outputs, wall


def main() -> None:
    weights = {
        name: array
        for name, array in make_mlp_inputs("MLP_1", BUCKET).items()
        if name.startswith("w")
    }
    cache = PartitionCache()

    rng = np.random.RandomState(0)
    plans = [
        [
            rng.randn(int(batch), 13).astype(np.float32)
            for batch in rng.choice([1, 2, 4, 8], REQUESTS_PER_CLIENT)
        ]
        for _ in range(N_CLIENTS)
    ]

    results = {}
    for batching in ("off", "on"):
        with InferenceSession.for_workload(
            "MLP_1",
            weights=weights,
            cache=cache,
            batch_buckets=[BUCKET],
            batching=batching,
            max_batch=16,
            batch_timeout_us=2_000,
        ) as session:
            session.run({"x": np.zeros((BUCKET, 13), np.float32)})  # warm
            outputs, wall = serve(session, plans)
            results[batching] = (outputs, wall)
            if session.engine is not None:
                stats = session.engine.stats()
        print(f"batching={batching}: {wall * 1e3:.1f} ms wall")

    # Same partition, same rows -> bit-identical per-request outputs.
    for off_plan, on_plan in zip(results["off"][0], results["on"][0]):
        for a, b in zip(off_plan, on_plan):
            np.testing.assert_array_equal(a, b)
    print("batched outputs bit-identical to unbatched: yes")

    total = N_CLIENTS * REQUESTS_PER_CLIENT
    print(
        f"{total} requests coalesced into {stats.batches} executions "
        f"(coalesce ratio {stats.coalesce_ratio:.2f}, "
        f"bucket utilization {stats.utilization:.0%})"
    )
    print()
    print(format_batching_stats(stats))
    assert stats.completed == total + 1  # plans + warmup request
    assert stats.batches < stats.completed
    print("ok")


if __name__ == "__main__":
    main()
