#!/usr/bin/env python
"""Multi-process sharded serving: one fleet, one owner per partition.

A :class:`~repro.service.ShardedSession` front end owns a fleet of worker
processes.  Each worker runs its own `PartitionCache` + `InferenceSession`
(micro-batching on), and every (model, shape-bucket) signature is routed
to exactly one worker by consistent hashing with bounded loads — so each
partition compiles **once** across the whole fleet and stays hot in a
single process, instead of every process compiling everything.

Tensors cross the process boundary through shared-memory ring slots
(`multiprocessing.shared_memory`), not pickles: the front end packs the
request into a leased slot, the worker maps numpy views over the same
bytes, executes, and overwrites the slot with the outputs.

The demo below serves two MLP workloads through a two-worker fleet,
verifies the fleet's outputs are bit-identical to a single in-process
`InferenceSession`, kills one worker mid-stream to show automatic restart
with zero failed requests, and prints the fleet-wide stats table with its
per-worker placement breakdown.

Run:  PYTHONPATH=src python examples/serving_sharded.py
"""

import os
import signal

import numpy as np

from repro.service import (
    InferenceSession,
    ModelSpec,
    ShardedSession,
    format_sharded_stats,
    live_segments,
)
from repro.workloads import make_mlp_inputs

BUCKETS = (4, 8)
WORKERS = 2


def mlp_weights(name):
    inputs = make_mlp_inputs(name, max(BUCKETS), seed=0)
    return {k: v for k, v in inputs.items() if k.startswith("w")}


def main() -> None:
    specs = [
        ModelSpec(
            name=name,
            workload=name,
            weights=mlp_weights(name),
            batch_buckets=BUCKETS,
        )
        for name in ("MLP_1", "MLP_2")
    ]

    with ShardedSession(
        specs, num_workers=WORKERS, heartbeat_interval=0.1
    ) as fleet:
        # Pre-compile every (model, bucket) pair in its home worker.
        fleet.warm_up()
        placement = fleet.stats().placement()
        for worker in sorted(placement):
            print(f"{worker}: {', '.join(placement[worker])}")

        # The fleet serves bit-identically to a single in-process session.
        x = make_mlp_inputs("MLP_1", 8, seed=1)["x"]
        with InferenceSession.for_workload(
            "MLP_1", weights=mlp_weights("MLP_1"), batch_buckets=BUCKETS
        ) as reference:
            served = list(fleet.run({"x": x}, model="MLP_1").values())
            direct = list(reference.run({"x": x}).values())
        for a, b in zip(served, direct):
            np.testing.assert_array_equal(a, b)
        print("sharded outputs bit-identical to single session: yes")

        # Kill a worker mid-stream: the heartbeat restarts it and the
        # in-flight requests are re-dispatched — none fail.
        victim_id = fleet.worker_for("MLP_1", 8)
        victim = fleet.workers()[victim_id]
        futures = [
            fleet.submit({"x": x}, model="MLP_1") for _ in range(10)
        ]
        os.kill(victim.pid, signal.SIGKILL)
        results = [f.result(timeout=120) for f in futures]
        replacement = fleet.workers()[victim_id]
        print(
            f"killed {victim_id} (pid {victim.pid}); "
            f"restarted as pid {replacement.pid}, "
            f"{len(results)}/{len(futures)} requests served, 0 failed"
        )
        for out in results:
            for a, b in zip(out.values(), direct):
                np.testing.assert_array_equal(a, b)

        stats = fleet.stats()
        print()
        print(format_sharded_stats(stats))
        assert stats.restarts[victim_id] == 1

    # close() drained the fleet and unlinked every shm segment.
    assert live_segments() == []
    print("all shared-memory segments unlinked: yes")
    print("ok")


if __name__ == "__main__":
    main()
