#!/usr/bin/env python
"""Online feedback-directed retuning: drift in, hot swap out.

The static pipeline tunes a partition once, at compile time, against the
analytical cost model.  `repro.adaptive` closes the loop at serving
time: an `InferenceSession(adaptive="on")` runs a background monitor
that watches each partition's measured-latency EWMA against the model's
expectation, and when the ratio drifts past a threshold it re-searches
the partition's tuning space *off the hot path*, compiles a challenger,
and serves an A/B trial — the challenger replaces the incumbent only if
it wins on live measurements.

The demo below serves MLP_1, injects a 20 ms/request latency
degradation into the resident partition (standing in for a co-tenant,
a frequency change, or a stale tuning decision), and serves traffic
until the loop detects the drift, retunes, and hot-swaps the trial
winner in.  Requests never fail and responses never change while all of
this happens underneath them.

Run:  PYTHONPATH=src python examples/adaptive_retune.py
"""

import time

import numpy as np

from repro.adaptive import AdaptiveConfig
from repro.service import InferenceSession, format_stats
from repro.workloads import make_mlp_inputs

#: Aggressive knobs so the demo converges in seconds; the defaults
#: (AdaptiveConfig()) are tuned for long-running serving processes.
CONFIG = AdaptiveConfig(
    poll_interval_s=0.02,
    drift_threshold=1.3,
    window=2,
    min_executes=3,
    trial_requests=3,
    cooldown_polls=2,
    retune_budget=16,
    retune_repeats=1,
    win_margin=0.01,
)

DRIFT_SECONDS = 0.02


def measure(session, feed, n=20):
    latencies = []
    for _ in range(n):
        start = time.perf_counter()
        session.run(feed)
        latencies.append(time.perf_counter() - start)
    return 1e3 * sum(latencies) / len(latencies)


def main() -> None:
    data = make_mlp_inputs("MLP_1", 32)
    weights = {k: v for k, v in data.items() if k.startswith("w")}
    feed = {"x": data["x"]}

    with InferenceSession.for_workload(
        "MLP_1",
        weights=weights,
        batch_buckets=[32],
        adaptive="on",
        adaptive_config=CONFIG,
    ) as session:
        manager = session.adaptive_manager
        reference = session.run(feed)  # compile; capture tuning problems
        healthy_ms = measure(session, feed)
        print(f"healthy latency: {healthy_ms:.2f} ms/request")

        (sig,) = [s.signature for s in session.stats().signatures]
        print(
            f"signature {sig[:12]}… captured "
            f"{len(session.tuning_problems(sig))} matmul tuning problems"
        )

        assert manager.inject_drift(sig, DRIFT_SECONDS)
        print(f"injected +{1e3 * DRIFT_SECONDS:.0f} ms/request of drift")

        # Keep serving: the loop detects, retunes, trials and swaps
        # underneath this traffic.  Every response stays correct.
        served = 0
        start = time.perf_counter()
        while manager.swaps < 1:
            if time.perf_counter() - start > 120:
                raise SystemExit("no swap within 120 s")
            out = session.run(feed)
            served += 1
            for name in reference:
                np.testing.assert_allclose(
                    out[name], reference[name], rtol=2e-5, atol=2e-5
                )
        elapsed = time.perf_counter() - start
        print(
            f"hot swap after {elapsed:.2f} s / {served} requests "
            "(every response checked against the original)"
        )

        recovered_ms = measure(session, feed)
        print(f"post-swap latency: {recovered_ms:.2f} ms/request")

        report = manager.report()
        print(
            f"report: swaps={report['swaps']} "
            f"drift_detections={report['drift_detections']} "
            f"state={report['signatures'][sig]['state']}"
        )
        print()
        print(format_stats(session.stats()))


if __name__ == "__main__":
    main()
