#!/usr/bin/env python
"""CNN layer: conv2d through the matmul template stack.

Convolutions route onto the same hybrid machinery the paper builds for
matmuls: conv2d decomposes to im2col + matmul, the kernel reshape and
blocked-weight prepacking land in the one-time init function, and the
bias + ReLU epilogue — after reshape sinking — fuses into the matmul's
post-op anchors.

Run:  python examples/cnn_layer.py
"""

import numpy as np

from repro import DType, GraphBuilder, compile_graph
from repro.graph_ir import conv2d


def naive_conv(x, w, stride=(1, 1), padding=(0, 0)):
    sh, sw = stride
    ph, pw = padding
    x = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    n, h, wd, c = x.shape
    kh, kw, _, oc = w.shape
    oh = (h - kh) // sh + 1
    ow = (wd - kw) // sw + 1
    out = np.zeros((n, oh, ow, oc), dtype=np.float32)
    for i in range(oh):
        for j in range(ow):
            patch = x[:, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
            out[:, i, j, :] = np.tensordot(
                patch, w, axes=([1, 2, 3], [0, 1, 2])
            )
    return out


def main() -> None:
    # A ResNet-ish 3x3 conv block: conv + bias + relu, NHWC.
    batch, size, cin, cout = 4, 28, 32, 64
    b = GraphBuilder("conv_block")
    x = b.input("x", DType.f32, (batch, size, size, cin))
    w = b.constant("w", dtype=DType.f32, shape=(3, 3, cin, cout))
    bias = b.constant("bias", dtype=DType.f32, shape=(cout,))
    y = conv2d(b, x, w, padding=(1, 1))
    b.output(b.relu(b.bias_add(y, bias)))

    partition = compile_graph(b.finish())
    print("== what the compiler did ==")
    for message in partition.lowered.ctx.log:
        if any(t in message for t in ("reshape_sink", "absorbed", "layout:")):
            print(" ", message)

    rng = np.random.RandomState(0)
    inputs = {
        "x": rng.randn(batch, size, size, cin).astype(np.float32),
        "w": (rng.randn(3, 3, cin, cout) * 0.05).astype(np.float32),
        "bias": rng.randn(cout).astype(np.float32),
    }
    out = list(partition.execute(inputs).values())[0]
    expected = np.maximum(
        naive_conv(inputs["x"], inputs["w"], padding=(1, 1))
        + inputs["bias"],
        0,
    )
    print("\noutput shape:", out.shape)
    print("max |compiled - naive conv| =", np.abs(out - expected).max())
    assert np.allclose(out, expected, rtol=1e-3, atol=1e-3)
    print("second run (cached weights) ...")
    out2 = list(partition.execute({"x": inputs["x"]}).values())[0]
    assert np.array_equal(out, out2)
    print("ok")


if __name__ == "__main__":
    main()
