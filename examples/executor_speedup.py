#!/usr/bin/env python
"""Interpreter vs specializing executor on one MLP workload.

Compiles the same graph twice — once per runtime backend
(``CompilerOptions.executor``) — checks the outputs are bit-identical,
then times steady-state execution of both.  The compiled backend wins by
moving per-call work (name resolution, schema validation, index
arithmetic, frame allocation) to a one-time specialization pass; the
numpy kernels themselves are shared.

Run:  python examples/executor_speedup.py
"""

import time

import numpy as np

from repro import CompilerOptions, DType, compile_graph
from repro.workloads import build_mlp_graph, make_mlp_inputs

WORKLOAD, BATCH, REPEAT = "MLP_1", 64, 5


def steady_state_ms(partition, feed) -> float:
    partition.execute(dict(feed))  # init graph + warmup
    partition.execute(dict(feed))
    best = float("inf")
    for _ in range(REPEAT):
        start = time.perf_counter()
        outputs = partition.execute(dict(feed))
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best, outputs


def main() -> None:
    feed = make_mlp_inputs(WORKLOAD, BATCH, DType.f32)

    results = {}
    for backend in ("interpret", "compiled"):
        partition = compile_graph(
            build_mlp_graph(WORKLOAD, BATCH, DType.f32),
            options=CompilerOptions(executor=backend),
        )
        results[backend] = steady_state_ms(partition, feed)
        partition.close()

    (interp_ms, interp_out), (comp_ms, comp_out) = (
        results["interpret"], results["compiled"]
    )

    # The executor is only a win if it changes nothing: outputs must be
    # bit-identical, not merely close.  (Names differ between separately
    # built graphs, so compare positionally.)
    for ref, got in zip(interp_out.values(), comp_out.values()):
        assert np.array_equal(ref, got), "backends diverged"

    print(f"{WORKLOAD} batch={BATCH} f32, best of {REPEAT}:")
    print(f"  interpreter : {interp_ms:8.3f} ms")
    print(f"  compiled    : {comp_ms:8.3f} ms")
    print(f"  speedup     : {interp_ms / comp_ms:8.2f}x  (bit-identical)")


if __name__ == "__main__":
    main()
