#!/usr/bin/env python
"""BERT-style multi-head attention: the paper's MHA workload.

Builds the scaled-dot-product-attention subgraph
``softmax(Q K^T / sqrt(d) + mask) V``, compiles it, and shows what the
fusion optimization did: the decomposed softmax — reductions included —
fuses into the first batch matmul (which the baseline primitives cannot
do), and both batch matmuls' outer loops merge.

Run:  python examples/bert_attention.py
"""

import numpy as np

from repro import DType, GraphBuilder, compile_graph
from repro.workloads import build_mha_graph, make_mha_inputs


def reference_attention(q, k, v, mask, head_dim):
    logits = q @ k.transpose(0, 1, 3, 2) / np.sqrt(head_dim) + mask
    probs = np.exp(logits - logits.max(-1, keepdims=True))
    probs /= probs.sum(-1, keepdims=True)
    return probs @ v


def main() -> None:
    batch, heads, seq, head_dim = 4, 8, 128, 64
    b = GraphBuilder("attention")
    shape = (batch, heads, seq, head_dim)
    q = b.input("q", DType.f32, shape)
    k = b.input("k", DType.f32, shape)
    v = b.input("v", DType.f32, shape)
    mask = b.input("mask", DType.f32, (batch, 1, 1, seq))
    scores = b.matmul(q, k, transpose_b=True)
    scores = b.div(scores, b.scalar("scale", float(np.sqrt(head_dim))))
    scores = b.add(scores, mask)
    probs = b.softmax(scores)
    b.output(b.matmul(probs, v))
    graph = b.finish()

    partition = compile_graph(graph)

    print("== what the compiler did ==")
    for message in partition.lowered.ctx.log:
        if any(tag in message for tag in ("absorbed", "coarse", "layout:")):
            print(" ", message)

    rng = np.random.RandomState(42)
    inputs = {
        "q": rng.randn(*shape).astype(np.float32),
        "k": rng.randn(*shape).astype(np.float32),
        "v": rng.randn(*shape).astype(np.float32),
        "mask": np.where(
            rng.rand(batch, 1, 1, seq) < 0.1, -1e9, 0.0
        ).astype(np.float32),
    }
    out = list(partition.execute(inputs).values())[0]
    expected = reference_attention(
        inputs["q"], inputs["k"], inputs["v"], inputs["mask"], head_dim
    )
    print("\nmax |compiled - numpy| =", np.abs(out - expected).max())
    assert np.allclose(out, expected, rtol=1e-4, atol=1e-5)

    # The Table 1 MHA workloads work the same way, int8 included.
    int8_graph = build_mha_graph("MHA_1", 32, DType.s8)
    int8_partition = compile_graph(int8_graph)
    int8_inputs = make_mha_inputs("MHA_1", 32, DType.s8)
    int8_out = list(int8_partition.execute(int8_inputs).values())[0]
    print(
        f"\nMHA_1 int8 output: shape {int8_out.shape}, "
        f"dtype {int8_out.dtype}, finite: {np.isfinite(int8_out).all()}"
    )


if __name__ == "__main__":
    main()
