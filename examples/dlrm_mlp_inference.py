#!/usr/bin/env python
"""DLRM-style MLP inference: the paper's MLP_1/MLP_2 workloads.

Compiles the Table 1 MLP workloads in fp32 and int8, verifies the compiled
int8 path against exact integer math, and prints a mini Figure 8: modeled
cycles for the oneDNN-primitives-style baseline, the compiler without
coarse-grain fusion, and the full compiler.

Run:  python examples/dlrm_mlp_inference.py
"""

import numpy as np

from repro import CompilerOptions, DType, XEON_8358, compile_graph
from repro.baseline import BaselineExecutor
from repro.perfmodel import MachineSimulator, specs_for_partition
from repro.perfmodel.report import format_speedup_table, geomean
from repro.workloads import build_mlp_graph, make_mlp_inputs


def modeled_cycles_compiled(graph, options=None) -> float:
    partition = compile_graph(graph, options=options)
    specs, warm = specs_for_partition(partition, XEON_8358)
    sim = MachineSimulator(XEON_8358)
    for tensor, nbytes in warm:
        sim.warm(tensor, nbytes)
    sim.run_all(specs)  # settle cache state
    return sim.run_all(specs).total_cycles


def modeled_cycles_baseline(graph) -> float:
    executor = BaselineExecutor(graph, XEON_8358)
    specs, warm = executor.specs()
    sim = MachineSimulator(XEON_8358)
    for tensor, nbytes in warm:
        sim.warm(tensor, nbytes)
    sim.run_all(specs)
    return sim.run_all(specs).total_cycles


def check_numerics() -> None:
    """Run the compiled int8 MLP_1 and compare against the baseline
    executor (both execute real numpy math)."""
    graph = build_mlp_graph("MLP_1", 32, DType.s8)
    inputs = make_mlp_inputs("MLP_1", 32, DType.s8)
    partition = compile_graph(build_mlp_graph("MLP_1", 32, DType.s8))
    compiled_out = list(partition.execute(inputs).values())[0]
    baseline = BaselineExecutor(graph, XEON_8358)
    baseline_out = list(baseline.execute(inputs).values())[0]
    err = np.abs(compiled_out - baseline_out).max()
    denom = max(np.abs(baseline_out).max(), 1.0)
    print(f"int8 MLP_1: max |compiled - baseline| = {err:.4f} "
          f"(relative {err / denom:.2e})")
    assert err / denom < 1e-2


def main() -> None:
    check_numerics()
    rows = []
    for workload in ("MLP_1", "MLP_2"):
        for dtype, label in ((DType.s8, "int8"), (DType.f32, "fp32")):
            speedups = []
            for batch in (32, 128, 512):
                base = modeled_cycles_baseline(
                    build_mlp_graph(workload, batch, dtype)
                )
                no_coarse = modeled_cycles_compiled(
                    build_mlp_graph(workload, batch, dtype),
                    CompilerOptions.no_coarse_fusion(),
                )
                full = modeled_cycles_compiled(
                    build_mlp_graph(workload, batch, dtype)
                )
                speedups.append(base / full)
                rows.append(
                    {
                        "test": f"{workload} b{batch} {label}",
                        "baseline kcycles": round(base / 1000),
                        "no-coarse kcycles": round(no_coarse / 1000),
                        "full kcycles": round(full / 1000),
                        "speedup": base / full,
                    }
                )
            print(
                f"{workload} {label}: geomean speedup "
                f"{geomean(speedups):.2f}x"
            )
    print()
    print(
        format_speedup_table(
            "MLP inference, modeled on Xeon-8358 (mini Figure 8)",
            rows,
            [
                "test",
                "baseline kcycles",
                "no-coarse kcycles",
                "full kcycles",
                "speedup",
            ],
        )
    )


if __name__ == "__main__":
    main()
