"""ServiceStats.merge and the per-worker format_stats breakdown."""

from repro.observability.quantile import from_values
from repro.service import ServiceStats, format_stats
from repro.service.stats import SignatureStats


def sig(signature, **kw):
    defaults = dict(
        label=f"label-{signature[:4]}",
        nbytes=1000,
        compiles=1,
        compile_seconds=0.5,
        executes=2,
        resident=True,
        rows_requested=10,
        rows_computed=16,
    )
    defaults.update(kw)
    return SignatureStats(signature=signature, **defaults)


def stats(**kw):
    defaults = dict(
        compiles=1,
        hits=3,
        misses=1,
        evictions=0,
        in_flight=0,
        resident_bytes=1000,
        capacity_bytes=4096,
        signatures=(),
    )
    defaults.update(kw)
    return ServiceStats(**defaults)


class TestMerge:
    def test_empty_merge_is_zero(self):
        merged = ServiceStats.merge([])
        assert merged.requests == 0
        assert merged.compiles == 0
        assert merged.capacity_bytes is None
        assert merged.signatures == ()

    def test_counters_sum(self):
        merged = ServiceStats.merge(
            [
                stats(compiles=2, hits=5, misses=1, resident_bytes=100),
                stats(compiles=3, hits=7, misses=2, resident_bytes=200),
            ]
        )
        assert merged.compiles == 5
        assert merged.hits == 12
        assert merged.misses == 3
        assert merged.requests == 15
        assert merged.resident_bytes == 300
        assert merged.capacity_bytes == 8192
        assert merged.hit_rate == 12 / 15

    def test_one_unbounded_cache_makes_fleet_unbounded(self):
        merged = ServiceStats.merge(
            [stats(capacity_bytes=4096), stats(capacity_bytes=None)]
        )
        assert merged.capacity_bytes is None

    def test_disjoint_signatures_concatenate_sorted(self):
        merged = ServiceStats.merge(
            [
                stats(signatures=(sig("bbb"),)),
                stats(signatures=(sig("aaa"),)),
            ]
        )
        assert [s.signature for s in merged.signatures] == ["aaa", "bbb"]

    def test_overlapping_signature_counts_sum(self):
        # After a crash re-homes a partition, two workers may report the
        # same signature; counts sum, residency charge takes the max.
        merged = ServiceStats.merge(
            [
                stats(
                    signatures=(
                        sig("aaa", compiles=1, executes=4, nbytes=500),
                    )
                ),
                stats(
                    signatures=(
                        sig("aaa", compiles=1, executes=6, nbytes=700),
                    )
                ),
            ]
        )
        assert len(merged.signatures) == 1
        merged_sig = merged.signatures[0]
        assert merged_sig.compiles == 2
        assert merged_sig.executes == 10
        assert merged_sig.nbytes == 700
        assert merged_sig.compile_seconds == 1.0
        assert merged_sig.rows_requested == 20
        assert merged_sig.rows_computed == 32

    def test_merge_of_one_is_identity_on_counters(self):
        one = stats(signatures=(sig("aaa"),))
        merged = ServiceStats.merge([one])
        assert merged.requests == one.requests
        assert merged.signatures == one.signatures

    def test_utilization_rolls_up_across_parts(self):
        merged = ServiceStats.merge(
            [
                stats(
                    signatures=(
                        sig("a", rows_requested=8, rows_computed=8),
                    )
                ),
                stats(
                    signatures=(
                        sig("b", rows_requested=4, rows_computed=8),
                    )
                ),
            ]
        )
        assert merged.utilization == 12 / 16
        assert merged.padded_rows == 4


class TestLatencyPercentiles:
    """Per-signature latency distributions must survive the fleet merge —
    an EWMA alone cannot answer a fleet-wide p95 honestly."""

    def test_percentiles_survive_merge(self):
        fast = sig(
            "aaa",
            latency_hist=from_values([0.001] * 95),
            latency_samples=95,
        )
        slow = sig(
            "aaa",
            latency_hist=from_values([1.0] * 5),
            latency_samples=5,
        )
        merged = ServiceStats.merge(
            [stats(signatures=(fast,)), stats(signatures=(slow,))]
        )
        (m,) = merged.signatures
        assert m.latency_hist.count == 100
        # Quantiles answer over the union: the median is a fast request,
        # the tail sees the slow worker.
        assert m.latency_quantile_seconds(0.5) < 0.01
        assert m.latency_quantile_seconds(0.99) > 0.5
        assert m.latency_p95_seconds is not None

    def test_one_sided_histogram_survives(self):
        with_hist = sig("aaa", latency_hist=from_values([0.5]))
        without = sig("aaa", latency_hist=None)
        merged = ServiceStats.merge(
            [stats(signatures=(with_hist,)), stats(signatures=(without,))]
        )
        assert merged.signatures[0].latency_hist.count == 1

    def test_merge_does_not_mutate_parts(self):
        original = from_values([0.1])
        a = sig("aaa", latency_hist=original)
        b = sig("aaa", latency_hist=from_values([0.2, 0.3]))
        ServiceStats.merge(
            [stats(signatures=(a,)), stats(signatures=(b,))]
        )
        assert original.count == 1

    def test_no_histogram_means_no_quantiles(self):
        plain = sig("aaa")
        assert plain.latency_quantile_seconds(0.95) is None
        assert plain.latency_p50_ms is None
        assert plain.to_dict()["latency_p95_ms"] is None

    def test_to_dict_serializes_distribution(self):
        s = sig(
            "aaa",
            latency_hist=from_values([i / 1000.0 for i in range(1, 101)]),
        )
        d = s.to_dict()
        assert d["latency_hist"]["count"] == 100
        assert 0.0 < d["latency_p50_ms"] < d["latency_p95_ms"]
        assert d["latency_p99_ms"] <= 0.1 * 1e3

    def test_p95_column_renders(self):
        text = format_stats(
            stats(
                signatures=(
                    sig("abcdef123456", latency_hist=from_values([0.002])),
                )
            )
        )
        assert "p95_ms" in text
        # 2ms within one log bucket: the rendered value starts with "2."
        row = next(
            ln for ln in text.splitlines() if "abcdef123456" in ln
        )
        assert " 2." in row


class TestFormat:
    def test_fleet_table_alone(self):
        text = format_stats(stats(signatures=(sig("abcdef123456"),)))
        assert "requests=4" in text
        assert "abcdef123456" in text
        assert "per-worker" not in text

    def test_per_worker_breakdown(self):
        workers = {
            "w0": stats(compiles=1, signatures=(sig("aaa"),)),
            "w1": stats(compiles=2, signatures=(sig("bbb"), sig("ccc"))),
        }
        merged = ServiceStats.merge(workers.values())
        text = format_stats(merged, workers=workers)
        assert "per-worker" in text
        assert "w0" in text and "w1" in text
        # Per-worker partition counts reflect each worker's residency.
        lines = [ln for ln in text.splitlines() if ln.strip().startswith("w")]
        w0_line = next(ln for ln in lines if "w0" in ln)
        w1_line = next(ln for ln in lines if "w1" in ln)
        assert " 1 " in w0_line
        assert " 2 " in w1_line
