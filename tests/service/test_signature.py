"""Graph signatures: isomorphic graphs hash equal, perturbations don't."""

import numpy as np

from repro import CompilerOptions, DType, GraphBuilder
from repro.microkernel.machine import XEON_8358
from repro.service import graph_signature
from repro.workloads import build_mha_graph, build_mlp_graph


def small_graph(k=32, n=16, act="relu", wdata=None):
    b = GraphBuilder("sig")
    x = b.input("x", DType.f32, (8, k))
    w = b.constant("w", data=wdata, dtype=DType.f32, shape=(k, n))
    t = b.matmul(x, w)
    t = b.relu(t) if act == "relu" else b.sigmoid(t)
    b.output(t)
    return b.finish()


class TestIsomorphism:
    def test_identical_builds_hash_equal(self):
        # Tensor/op ids come from process-global counters, so the two
        # builds are isomorphic but differently numbered.
        assert graph_signature(small_graph()) == graph_signature(
            small_graph()
        )

    def test_workload_builders_hash_equal(self):
        for build, name in (
            (build_mlp_graph, "MLP_1"),
            (build_mha_graph, "MHA_1"),
        ):
            assert graph_signature(build(name, 32)) == graph_signature(
                build(name, 32)
            )

    def test_int8_workload_hash_equal(self):
        a = build_mlp_graph("MLP_1", 32, DType.s8)
        b = build_mlp_graph("MLP_1", 32, DType.s8)
        assert graph_signature(a) == graph_signature(b)


class TestPerturbations:
    def test_shape_changes_signature(self):
        assert graph_signature(small_graph(k=32)) != graph_signature(
            small_graph(k=64)
        )

    def test_batch_changes_signature(self):
        assert graph_signature(
            build_mlp_graph("MLP_1", 32)
        ) != graph_signature(build_mlp_graph("MLP_1", 64))

    def test_dtype_changes_signature(self):
        assert graph_signature(
            build_mlp_graph("MLP_1", 32, DType.f32)
        ) != graph_signature(build_mlp_graph("MLP_1", 32, DType.s8))

    def test_topology_changes_signature(self):
        assert graph_signature(small_graph(act="relu")) != graph_signature(
            small_graph(act="sigmoid")
        )

    def test_constant_data_changes_signature(self):
        w1 = np.ones((32, 16), np.float32)
        w2 = np.full((32, 16), 2.0, np.float32)
        assert graph_signature(small_graph(wdata=w1)) != graph_signature(
            small_graph(wdata=w2)
        )
        assert graph_signature(small_graph(wdata=w1)) == graph_signature(
            small_graph(wdata=w1.copy())
        )

    def test_options_change_signature(self):
        g = small_graph()
        full = graph_signature(g, options=CompilerOptions())
        ablated = graph_signature(
            g, options=CompilerOptions.no_coarse_fusion()
        )
        assert full != ablated

    def test_machine_changes_signature(self):
        import dataclasses

        g = small_graph()
        laptop = dataclasses.replace(
            XEON_8358, name="laptop", num_cores=8
        )
        assert graph_signature(g, XEON_8358) != graph_signature(g, laptop)

    def test_input_rename_changes_signature(self):
        # Input names are the binding surface callers feed arrays through.
        def named(name):
            b = GraphBuilder("sig")
            x = b.input(name, DType.f32, (8, 32))
            w = b.constant("w", dtype=DType.f32, shape=(32, 16))
            b.output(b.relu(b.matmul(x, w)))
            return b.finish()

        assert graph_signature(named("x")) != graph_signature(named("y"))


class TestTuningInSignature:
    """PR 2 regression: tuned and untuned compilations must not collide."""

    def test_tuning_mode_changes_signature(self):
        g = small_graph()
        off = graph_signature(g, options=CompilerOptions())
        model = graph_signature(g, options=CompilerOptions(tuning="model"))
        measured = graph_signature(
            g, options=CompilerOptions(tuning="measured")
        )
        cached_only = graph_signature(
            g, options=CompilerOptions(tuning="cached-only")
        )
        assert len({off, model, measured, cached_only}) == 4

    def test_tuning_cache_path_changes_signature(self):
        # Different caches can hold different winners for the same key.
        g = small_graph()
        a = graph_signature(g, options=CompilerOptions(tuning="model"))
        b = graph_signature(
            g,
            options=CompilerOptions(
                tuning="model", tuning_cache_path="/tmp/t.json"
            ),
        )
        assert a != b

    def test_tuning_budget_and_seed_change_signature(self):
        g = small_graph()
        base = graph_signature(g, options=CompilerOptions(tuning="model"))
        assert base != graph_signature(
            g, options=CompilerOptions(tuning="model", tuning_budget=64)
        )
        assert base != graph_signature(
            g, options=CompilerOptions(tuning="model", tuning_seed=7)
        )

    def test_tuning_cache_version_in_payload(self, monkeypatch):
        # Same options, bumped tuning-cache schema version -> new signature.
        from repro.service import signature as sig_mod
        from repro.tuner import cache as cache_mod

        g = small_graph()
        before = graph_signature(g, options=CompilerOptions(tuning="model"))
        off_before = graph_signature(g, options=CompilerOptions())
        monkeypatch.setattr(
            cache_mod,
            "TUNING_CACHE_SCHEMA_VERSION",
            cache_mod.TUNING_CACHE_SCHEMA_VERSION + 1,
        )
        after = graph_signature(g, options=CompilerOptions(tuning="model"))
        off_after = graph_signature(g, options=CompilerOptions())
        assert before != after
        # Untuned compilations are independent of the tuning generation.
        assert off_before == off_after


class TestStability:
    def test_signature_is_hex_digest(self):
        sig = graph_signature(small_graph())
        assert len(sig) == 64
        int(sig, 16)  # raises if not hex

    def test_signature_not_affected_by_prior_builds(self):
        # Interleave unrelated builds to shift the global id counters.
        first = graph_signature(small_graph())
        build_mha_graph("MHA_2", 64)
        build_mlp_graph("MLP_2", 128, DType.s8)
        assert graph_signature(small_graph()) == first
