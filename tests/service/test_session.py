"""InferenceSession: bucketing, padding, numerical identity, threading."""

import threading

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    DType,
    compile_counter,
    compile_graph,
)
from repro.service import InferenceSession, PartitionCache
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)


def mlp_weights(name="MLP_1", seed=0):
    inputs = make_mlp_inputs(name, 32, seed=seed)
    return {k: v for k, v in inputs.items() if k.startswith("w")}


def mlp_session(weights, **kwargs):
    return InferenceSession.for_workload(
        "MLP_1", weights=weights, **kwargs
    )


class TestBucketing:
    def test_bucket_for_rounds_up(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32, 64, 128])
        assert sess.bucket_for(1) == 32
        assert sess.bucket_for(32) == 32
        assert sess.bucket_for(33) == 64
        assert sess.bucket_for(128) == 128
        assert sess.bucket_for(200) == 200  # beyond largest: exact

    def test_no_buckets_compiles_exact(self):
        sess = mlp_session(mlp_weights(), batch_buckets=None)
        assert sess.bucket_for(17) == 17

    def test_three_buckets_three_compilations(self):
        """ISSUE acceptance: 3 shape buckets -> exactly 3 compilations."""
        weights = mlp_weights()
        sess = mlp_session(weights, batch_buckets=[32, 64, 128])
        rng = np.random.RandomState(0)
        with compile_counter() as counter:
            for batch in (8, 20, 32, 40, 64, 70, 100, 128, 16, 90):
                out = sess.run(
                    {"x": rng.randn(batch, 13).astype(np.float32)}
                )
                assert list(out.values())[0].shape[0] == batch
        assert counter.count == 3
        stats = sess.stats()
        assert stats.compiles == 3
        assert stats.misses == 3
        assert stats.hits == 7

    def test_introspection(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32])
        assert sess.input_names == ["x"]
        assert sess.weight_names == ["w0", "w1", "w2"]
        assert sess.buckets == (32,)


class TestNumericalIdentity:
    def test_mlp_exact_bucket_matches_direct(self):
        weights = mlp_weights()
        sess = mlp_session(weights, batch_buckets=[32])
        rng = np.random.RandomState(1)
        x = rng.randn(32, 13).astype(np.float32)
        served = list(sess.run({"x": x}).values())[0]
        direct = list(
            compile_graph(build_mlp_graph("MLP_1", 32)).execute(
                {**weights, "x": x}
            ).values()
        )[0]
        np.testing.assert_array_equal(served, direct)

    def test_mlp_padded_bucket_matches_direct(self):
        weights = mlp_weights()
        sess = mlp_session(weights, batch_buckets=[32])
        rng = np.random.RandomState(2)
        x = rng.randn(20, 13).astype(np.float32)
        served = list(sess.run({"x": x}).values())[0]
        direct = list(
            compile_graph(build_mlp_graph("MLP_1", 20)).execute(
                {**weights, "x": x}
            ).values()
        )[0]
        assert served.shape == (20, 128)
        np.testing.assert_array_equal(served, direct)

    def test_mlp_int8_padded_matches_direct(self):
        inputs = make_mlp_inputs("MLP_1", 24, DType.s8)
        weights = {k: v for k, v in inputs.items() if k.startswith("w")}
        sess = InferenceSession.for_workload(
            "MLP_1", dtype=DType.s8, weights=weights, batch_buckets=[32]
        )
        served = list(sess.run({"x": inputs["x"]}).values())[0]
        direct = list(
            compile_graph(build_mlp_graph("MLP_1", 24, DType.s8)).execute(
                inputs
            ).values()
        )[0]
        np.testing.assert_array_equal(served, direct)

    def test_mha_exact_and_padded_match_direct(self):
        sess = InferenceSession.for_workload("MHA_1", batch_buckets=[4])
        for batch in (4, 2):  # exact bucket, then padded
            inputs = make_mha_inputs("MHA_1", batch, seed=batch)
            served = list(sess.run(inputs).values())[0]
            direct = list(
                compile_graph(build_mha_graph("MHA_1", batch)).execute(
                    inputs
                ).values()
            )[0]
            assert served.shape[0] == batch
            np.testing.assert_array_equal(served, direct)


class TestThreadedServing:
    def test_mixed_batches_from_many_threads(self):
        weights = mlp_weights()
        cache = PartitionCache()
        sess = mlp_session(
            weights, batch_buckets=[32, 64], cache=cache
        )
        batches = [8, 16, 32, 40, 48, 64, 24, 56]
        rng = np.random.RandomState(3)
        requests = [
            rng.randn(batch, 13).astype(np.float32) for batch in batches
        ]
        # Reference results from an identical session served sequentially
        # (own cache, so the concurrent session still races compilation).
        # Compilation is deterministic, so bitwise equality is required.
        reference = mlp_session(weights, batch_buckets=[32, 64])
        expected = {}
        for batch, x in zip(batches, requests):
            expected[batch] = list(reference.run({"x": x}).values())[0]

        barrier = threading.Barrier(len(batches))
        results = [None] * len(batches)
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = list(
                    sess.run({"x": requests[i]}).values()
                )[0]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with compile_counter() as counter:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(batches))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        # Two buckets serve every request: at most 2 compilations even
        # under concurrency (single-flight), regardless of arrival order.
        assert counter.count <= 2
        for i, batch in enumerate(batches):
            np.testing.assert_array_equal(results[i], expected[batch])
        assert sess.stats().hit_rate > 0


class TestSharedCache:
    def test_sessions_share_compilations_via_cache(self):
        weights = mlp_weights()
        cache = PartitionCache()
        a = mlp_session(weights, batch_buckets=[32], cache=cache)
        b = mlp_session(weights, batch_buckets=[32], cache=cache)
        rng = np.random.RandomState(4)
        x = rng.randn(32, 13).astype(np.float32)
        with compile_counter() as counter:
            out_a = list(a.run({"x": x}).values())[0]
            out_b = list(b.run({"x": x}).values())[0]
        assert counter.count == 1  # isomorphic builders share a signature
        np.testing.assert_array_equal(out_a, out_b)

    def test_options_split_cache_entries(self):
        weights = mlp_weights()
        cache = PartitionCache()
        full = mlp_session(weights, batch_buckets=[32], cache=cache)
        ablated = mlp_session(
            weights,
            batch_buckets=[32],
            cache=cache,
            options=CompilerOptions.no_coarse_fusion(),
        )
        rng = np.random.RandomState(5)
        x = rng.randn(32, 13).astype(np.float32)
        with compile_counter() as counter:
            full.run({"x": x})
            ablated.run({"x": x})
        assert counter.count == 2


class TestValidation:
    def test_missing_batch_input(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32])
        with pytest.raises(ValueError, match="missing input"):
            sess.run({"not_x": np.zeros((4, 13), np.float32)})

    def test_weight_scaling_with_batch_rejected(self):
        from repro.graph_ir import GraphBuilder

        def bad_builder(batch):
            b = GraphBuilder("bad")
            x = b.input("x", DType.f32, (batch, 8))
            w = b.constant("w", dtype=DType.f32, shape=(batch, 8))
            b.output(b.add(x, w))
            return b.finish()

        with pytest.raises(ValueError, match="batch-independent"):
            InferenceSession(bad_builder)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            InferenceSession.for_workload("RNN_9")


class TestSessionLifecycle:
    """ISSUE satellite: sessions own a close() that releases partitions."""

    def test_close_releases_owned_cache_partitions(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32])
        x = np.zeros((32, 13), np.float32)
        sess.run({"x": x})
        cache = sess.cache
        residents = cache.resident_partitions()
        assert residents
        for p in residents:
            p.num_threads = 2
            p.execute({"x": x, **mlp_weights()})
            assert p.has_active_pool
        sess.close()
        assert sess.closed
        for p in residents:
            assert not p.has_active_pool
        assert len(cache) == 0
        sess.close()  # idempotent

    def test_close_leaves_shared_cache_alone(self):
        cache = PartitionCache()
        sess = mlp_session(
            mlp_weights(), batch_buckets=[32], cache=cache
        )
        sess.run({"x": np.zeros((32, 13), np.float32)})
        assert len(cache) == 1
        sess.close()
        # A caller-provided cache may back other sessions: untouched.
        assert len(cache) == 1
        assert cache.resident_partitions()

    def test_run_and_submit_after_close_raise(self):
        sess = mlp_session(
            mlp_weights(), batch_buckets=[32], batching="on"
        )
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.run({"x": np.zeros((4, 13), np.float32)})
        with pytest.raises(RuntimeError, match="closed"):
            sess.submit({"x": np.zeros((4, 13), np.float32)})

    def test_context_manager_closes(self):
        with mlp_session(mlp_weights(), batch_buckets=[32]) as sess:
            out = sess.run({"x": np.zeros((8, 13), np.float32)})
            assert next(iter(out.values())).shape == (8, 128)
        assert sess.closed


class TestCloseRace:
    """ISSUE satellite: a submit racing close() must either serve or
    raise SessionClosedError — never hang, never lose a future."""

    def test_submit_storm_racing_close_settles_every_future(self):
        from repro.errors import SessionClosedError

        weights = mlp_weights()
        x = np.random.RandomState(9).randn(4, 13).astype(np.float32)
        for _ in range(3):  # repeat: the race window is narrow
            sess = mlp_session(
                weights,
                batch_buckets=[32],
                batching="on",
                batch_timeout_us=200,
            )
            sess.run({"x": x})  # warm so submits are fast
            start = threading.Barrier(3)
            futures, rejected = [], []

            def submitter():
                start.wait()
                for _ in range(50):
                    try:
                        futures.append(sess.submit({"x": x}))
                    except SessionClosedError:
                        rejected.append(1)
                        return

            def closer():
                start.wait()
                sess.close(drain=True)

            threads = [
                threading.Thread(target=submitter),
                threading.Thread(target=submitter),
                threading.Thread(target=closer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert sess.closed
            # Every accepted future settles: a result or a closed error.
            for future in futures:
                try:
                    out = future.result(timeout=30)
                    assert next(iter(out.values())).shape == (4, 128)
                except SessionClosedError:
                    pass

    def test_concurrent_closes_are_idempotent(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32])
        sess.run({"x": np.zeros((8, 13), np.float32)})
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            try:
                barrier.wait()
                sess.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert sess.closed


class TestBatchingMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="batching"):
            mlp_session(mlp_weights(), batching="sometimes")

    def test_off_mode_has_no_engine(self):
        sess = mlp_session(mlp_weights(), batch_buckets=[32])
        assert sess.batching == "off"
        assert sess.engine is None
        with pytest.raises(RuntimeError, match="batching"):
            sess.submit({"x": np.zeros((4, 13), np.float32)})
        sess.close()

    def test_on_mode_serves_through_engine(self):
        weights = mlp_weights()
        cache = PartitionCache()
        reference = mlp_session(
            weights, batch_buckets=[32], cache=cache
        )
        with mlp_session(
            weights,
            batch_buckets=[32],
            cache=cache,
            batching="on",
            max_batch=4,
            batch_timeout_us=5_000,
        ) as sess:
            assert sess.batching == "on"
            assert sess.engine is not None
            rng = np.random.RandomState(6)
            x = rng.randn(12, 13).astype(np.float32)
            served = next(iter(sess.run({"x": x}).values()))
            direct = next(iter(reference.run({"x": x}).values()))
            np.testing.assert_array_equal(served, direct)
            assert sess.engine.stats().completed == 1
        assert sess.engine.closed
        reference.close()


class TestDynamicBatch:
    """dynamic_batch='on': one shape-polymorphic partition, zero padding."""

    def test_one_compile_serves_every_batch_unpadded(self):
        from repro.observability import get_registry

        registry = get_registry()
        padded_before = registry.value("service.padding_rows") or 0
        weights = mlp_weights()
        sess = mlp_session(weights, dynamic_batch="on")
        assert sess.dynamic_batch == "on"
        assert sess.buckets is None
        rng = np.random.RandomState(3)
        with compile_counter() as counter:
            for batch in (1, 3, 8, 17, 32):
                out = sess.run(
                    {"x": rng.randn(batch, 13).astype(np.float32)}
                )
                assert next(iter(out.values())).shape[0] == batch
        assert counter.count == 1
        assert sess.stats().compiles == 1
        padded_after = registry.value("service.padding_rows") or 0
        assert padded_after == padded_before
        sess.close()

    def test_bit_identical_to_static_bucket_path(self):
        weights = mlp_weights()
        dynamic = mlp_session(weights, dynamic_batch="on")
        bucketed = mlp_session(weights, batch_buckets=[32])
        rng = np.random.RandomState(4)
        for batch in (1, 3, 8, 17, 32):
            x = rng.randn(batch, 13).astype(np.float32)
            got = next(iter(dynamic.run({"x": x}).values()))
            want = next(iter(bucketed.run({"x": x}).values()))
            np.testing.assert_array_equal(got, want)
        dynamic.close()
        bucketed.close()

    def test_dynamic_rejects_buckets_and_bad_mode(self):
        with pytest.raises(ValueError, match="incompatible"):
            mlp_session(
                mlp_weights(), dynamic_batch="on", batch_buckets=[32]
            )
        with pytest.raises(ValueError, match="dynamic_batch"):
            mlp_session(mlp_weights(), dynamic_batch="sometimes")

    def test_warm_compiles_the_one_partition(self):
        sess = mlp_session(mlp_weights(), dynamic_batch="on")
        with compile_counter() as counter:
            sess.warm(8)
        assert counter.count == 1
        with compile_counter() as counter:
            sess.run({"x": np.zeros((17, 13), np.float32)})
        assert counter.count == 0
        sess.close()


class TestOversizeAccounting:
    def test_oversize_compile_counted_once_per_bucket(self):
        from repro.observability import get_registry

        registry = get_registry()
        before = registry.value("service.oversize_compiles") or 0
        sess = mlp_session(mlp_weights(), batch_buckets=[8, 16])
        rng = np.random.RandomState(5)
        for batch in (4, 16):  # in-bucket: no oversize marks
            sess.run({"x": rng.randn(batch, 13).astype(np.float32)})
        assert (registry.value("service.oversize_compiles") or 0) == before
        for _ in range(2):  # same oversize bucket counts once
            sess.run({"x": rng.randn(24, 13).astype(np.float32)})
        assert (registry.value("service.oversize_compiles") or 0) == before + 1
        sess.run({"x": rng.randn(40, 13).astype(np.float32)})
        assert (registry.value("service.oversize_compiles") or 0) == before + 2
        sess.close()
