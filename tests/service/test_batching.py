"""BatchingEngine: coalescing, identity, lifecycle, backpressure, stress.

Deterministic queue mechanics (window shapes, drain vs cancel,
backpressure) run against a stub session with a controllable execute;
end-to-end correctness and the multi-threaded stress test run against a
real MLP session, comparing to the unbatched path of the *same* shape
bucket (the reference the engine must be bit-identical to).
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    flow_chains,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
    validate_flow_chains,
)
from repro.observability.context import RequestContext, active_contexts
from repro.service import (
    BatchingEngine,
    InferenceSession,
    PartitionCache,
)
from repro.workloads import make_mlp_inputs


def mlp_weights(name="MLP_1", seed=0):
    inputs = make_mlp_inputs(name, 32, seed=seed)
    return {k: v for k, v in inputs.items() if k.startswith("w")}


class StubSession:
    """Minimal InferenceSession interface with a controllable execute."""

    def __init__(self, buckets=(8,), block=None):
        self.buckets = tuple(buckets)
        self.input_names = ["x"]
        self.input_batch_axes = {"x": [(0, 1)]}
        self.output_batch_axes = [[(0, 1)]]
        self.input_dtypes = {"x": np.dtype(np.float32)}
        self.block = block  # optional Event the executor waits on
        self.calls = []
        self._lock = threading.Lock()

    def bucket_for(self, batch):
        for bucket in self.buckets:
            if bucket >= batch:
                return bucket
        return batch

    def infer_batch(self, inputs):
        return int(np.asarray(inputs["x"]).shape[0])

    def execute_bucket(self, inputs, batch, bucket):
        if self.block is not None:
            self.block.wait()
        with self._lock:
            self.calls.append((batch, bucket))
        x = np.asarray(inputs["x"])
        return {"y": (x * 2.0)[:batch]}


def submit_rows(engine, batch, value=1.0):
    x = np.full((batch, 1), value, np.float32)
    return engine.submit({"x": x}), x


class TestCoalescing:
    def test_exact_fill_executes_once(self):
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=8, batch_timeout_us=200_000)
        futures = [submit_rows(engine, 2, float(i))[0] for i in range(4)]
        results = [f.result(timeout=10) for f in futures]
        engine.close()
        assert stub.calls == [(8, 8)]  # one combined execution, no padding
        for i, result in enumerate(results):
            np.testing.assert_array_equal(
                result["y"], np.full((2, 1), 2.0 * i, np.float32)
            )
        stats = engine.stats()
        assert stats.batches == 1
        assert stats.completed == 4
        assert stats.coalesce_ratio == 4.0
        assert stats.padded_rows == 0

    def test_timeout_flushes_partial_window(self):
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=8, batch_timeout_us=5_000)
        future, _ = submit_rows(engine, 3)
        future.result(timeout=10)  # lands after the 5ms window expires
        engine.close()
        assert stub.calls == [(3, 8)]
        assert engine.stats().padded_rows == 5

    def test_max_batch_bounds_window(self):
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=2, batch_timeout_us=200_000)
        futures = [submit_rows(engine, 1)[0] for _ in range(4)]
        for future in futures:
            future.result(timeout=10)
        engine.close()
        assert sum(batch for batch, _ in stub.calls) == 4
        assert all(batch <= 2 for batch, _ in stub.calls)
        assert engine.stats().max_requests_per_batch <= 2

    def test_oversized_head_ships_current_window(self):
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=8, batch_timeout_us=200_000)
        first, _ = submit_rows(engine, 5)
        second, _ = submit_rows(engine, 6)  # 5 + 6 > 8: must not merge
        first.result(timeout=10)
        second.result(timeout=10)
        engine.close()
        assert stub.calls == [(5, 8), (6, 8)]

    def test_exact_specialization_dispatches_solo(self):
        # Batches beyond the largest bucket never coalesce: combining
        # them would mint new partition shapes per combination.
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=8, batch_timeout_us=200_000)
        futures = [submit_rows(engine, 10)[0] for _ in range(3)]
        for future in futures:
            future.result(timeout=10)
        engine.close()
        assert stub.calls == [(10, 10)] * 3


class TestValidation:
    def test_rejects_multi_axis_inputs(self):
        stub = StubSession()
        stub.input_batch_axes = {"x": [(0, 1), (1, 1)]}
        with pytest.raises(ValueError, match="exactly one concatenation"):
            BatchingEngine(stub)

    def test_rejects_batch_independent_output(self):
        stub = StubSession()
        stub.output_batch_axes = [[]]
        with pytest.raises(ValueError, match="exactly one split"):
            BatchingEngine(stub)

    def test_bad_request_fails_alone(self):
        stub = StubSession(buckets=(8,))
        engine = BatchingEngine(stub, max_batch=8, batch_timeout_us=50_000)
        with pytest.raises(ValueError, match="missing input"):
            engine.submit({"not_x": np.zeros((2, 1), np.float32)}, batch=2)
        with pytest.raises(ValueError, match="dtype"):
            engine.submit({"x": np.zeros((2, 1), np.float64)})
        with pytest.raises(ValueError, match="expected extent"):
            engine.submit({"x": np.zeros((2, 1), np.float32)}, batch=3)
        # The queue stayed clean: a good request still round-trips.
        good, _ = submit_rows(engine, 2)
        assert good.result(timeout=10)["y"].shape == (2, 1)
        engine.close()

    def test_bad_knobs_rejected(self):
        stub = StubSession()
        with pytest.raises(ValueError, match="max_batch"):
            BatchingEngine(stub, max_batch=0)
        with pytest.raises(ValueError, match="batch_timeout_us"):
            BatchingEngine(stub, batch_timeout_us=-1)
        with pytest.raises(ValueError, match="queue_depth"):
            BatchingEngine(stub, queue_depth=0)


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        gate = threading.Event()
        stub = StubSession(buckets=(8,), block=gate)
        engine = BatchingEngine(stub, max_batch=1, batch_timeout_us=0)
        futures = [submit_rows(engine, 8)[0] for _ in range(5)]

        closer = threading.Thread(target=engine.close, kwargs={"drain": True})
        closer.start()
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        # Drained: every future resolved with a result, none cancelled.
        for future in futures:
            assert future.done() and not future.cancelled()
            assert future.result()["y"].shape == (8, 1)
        assert engine.stats().completed == 5
        assert engine.stats().cancelled == 0

    def test_close_cancel_settles_every_future(self):
        gate = threading.Event()
        stub = StubSession(buckets=(8,), block=gate)
        engine = BatchingEngine(stub, max_batch=1, batch_timeout_us=0)
        futures = [submit_rows(engine, 8)[0] for _ in range(5)]
        # Let the dispatcher pick up the first window, then cancel.
        deadline = time.time() + 5
        while not futures[0].running() and time.time() < deadline:
            time.sleep(0.001)

        closer = threading.Thread(
            target=engine.close, kwargs={"drain": False}
        )
        closer.start()
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        stats = engine.stats()
        # No future may be left pending: each either carried a result
        # (was already executing) or was cancelled in the queue.
        for future in futures:
            assert future.done()
            if future.cancelled():
                with pytest.raises(CancelledError):
                    future.result()
            else:
                assert future.result()["y"].shape == (8, 1)
        assert stats.completed >= 1  # the in-flight window finished
        assert stats.completed + stats.cancelled == 5

    def test_submit_after_close_raises(self):
        engine = BatchingEngine(StubSession())
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            submit_rows(engine, 2)

    def test_close_is_idempotent_and_context_managed(self):
        with BatchingEngine(StubSession()) as engine:
            future, _ = submit_rows(engine, 2)
            assert future.result(timeout=10)["y"].shape == (2, 1)
        assert engine.closed
        engine.close()  # second close is a no-op

    def test_caller_cancelled_future_is_skipped(self):
        gate = threading.Event()
        stub = StubSession(buckets=(8,), block=gate)
        engine = BatchingEngine(stub, max_batch=1, batch_timeout_us=0)
        blocker, _ = submit_rows(engine, 8)  # occupies the dispatcher
        victim, _ = submit_rows(engine, 8)
        deadline = time.time() + 5
        while not blocker.running() and time.time() < deadline:
            time.sleep(0.001)
        assert victim.cancel()
        gate.set()
        blocker.result(timeout=10)
        engine.close()
        assert victim.cancelled()
        # The cancelled request never reached the session.
        assert len(stub.calls) == 1


class TestBackpressure:
    def test_submit_blocks_at_queue_depth(self):
        gate = threading.Event()
        stub = StubSession(buckets=(8,), block=gate)
        engine = BatchingEngine(
            stub, max_batch=1, batch_timeout_us=0, queue_depth=1
        )
        first, _ = submit_rows(engine, 8)  # dispatcher takes this one
        deadline = time.time() + 5
        while not first.running() and time.time() < deadline:
            time.sleep(0.001)
        second, _ = submit_rows(engine, 8)  # fills the queue (depth 1)

        third_done = threading.Event()
        third_box = []

        def submit_third():
            third_box.append(submit_rows(engine, 8)[0])
            third_done.set()

        submitter = threading.Thread(target=submit_third)
        submitter.start()
        # The third submit must block while the queue is full.
        assert not third_done.wait(timeout=0.15)
        gate.set()
        assert third_done.wait(timeout=10)
        submitter.join(timeout=10)
        for future in (first, second, third_box[0]):
            assert future.result(timeout=10)["y"].shape == (8, 1)
        engine.close()


class TestErrorPropagation:
    def test_execution_error_fans_out_to_window(self):
        class FailingSession(StubSession):
            def execute_bucket(self, inputs, batch, bucket):
                raise RuntimeError("boom")

        engine = BatchingEngine(
            FailingSession(buckets=(8,)), max_batch=8,
            batch_timeout_us=100_000,
        )
        futures = [submit_rows(engine, 4)[0] for _ in range(2)]
        for future in futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)
        engine.close()
        assert engine.stats().failed == 2


class TestRealSession:
    def test_batched_is_bit_identical_to_unbatched_bucket(self):
        weights = mlp_weights()
        cache = PartitionCache()
        reference = InferenceSession.for_workload(
            "MLP_1", weights=weights, batch_buckets=[32], cache=cache
        )
        session = InferenceSession.for_workload(
            "MLP_1",
            weights=weights,
            batch_buckets=[32],
            cache=cache,
            batching="on",
            max_batch=8,
            batch_timeout_us=20_000,
        )
        rng = np.random.RandomState(7)
        requests = [
            rng.randn(batch, 13).astype(np.float32)
            for batch in (8, 8, 8, 8, 5, 32, 17)
        ]
        futures = [session.submit({"x": x}) for x in requests]
        for x, future in zip(requests, futures):
            served = next(iter(future.result(timeout=30).values()))
            direct = next(iter(reference.run({"x": x}).values()))
            assert served.shape == (x.shape[0], 128)
            np.testing.assert_array_equal(served, direct)
        stats = session.engine.stats()
        assert stats.completed == len(requests)
        assert stats.batches < len(requests)  # something coalesced
        session.close()
        reference.close()

    def test_stress_many_threads_mixed_batches(self):
        """ISSUE satellite: >=8 threads hammer one session; outputs must
        match the single-threaded reference and no future is dropped."""
        weights = mlp_weights()
        cache = PartitionCache()
        reference = InferenceSession.for_workload(
            "MLP_1", weights=weights, batch_buckets=[32], cache=cache
        )
        session = InferenceSession.for_workload(
            "MLP_1",
            weights=weights,
            batch_buckets=[32],
            cache=cache,
            batching="on",
            max_batch=16,
            batch_timeout_us=2_000,
        )
        n_threads, per_thread = 8, 6
        rng = np.random.RandomState(11)
        plans = [
            [
                rng.randn(int(batch), 13).astype(np.float32)
                for batch in rng.randint(1, 33, per_thread)
            ]
            for _ in range(n_threads)
        ]
        expected = [
            [next(iter(reference.run({"x": x}).values())) for x in plan]
            for plan in plans
        ]
        results = [[None] * per_thread for _ in range(n_threads)]
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(ti):
            try:
                barrier.wait()
                for ri, x in enumerate(plans[ti]):
                    results[ti][ri] = next(
                        iter(session.run({"x": x}).values())
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(ti,))
            for ti in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        session.close()
        reference.close()
        stats = session.engine.stats()
        assert stats.completed == n_threads * per_thread
        assert stats.cancelled == 0
        for ti in range(n_threads):
            for ri in range(per_thread):
                np.testing.assert_array_equal(
                    results[ti][ri], expected[ti][ri]
                )

    def test_request_context_flows_single_process(self):
        """Tracing on: submit mints a context ("s"), batch.execute
        terminates the local chain ("f"), and the execute slice sees the
        coalesced requests' contexts via the thread-local binding."""

        class ContextSpy(StubSession):
            def __init__(self, **kw):
                super().__init__(**kw)
                self.bound = []

            def execute_bucket(self, inputs, batch, bucket):
                self.bound.append(active_contexts())
                return super().execute_bucket(inputs, batch, bucket)

        original = get_tracer()
        tracer = set_tracer(Tracer(enabled=True))
        try:
            spy = ContextSpy(buckets=(8,))
            engine = BatchingEngine(
                spy, max_batch=8, batch_timeout_us=200_000
            )
            futures = [submit_rows(engine, 2)[0] for _ in range(4)]
            for future in futures:
                future.result(timeout=10)
            engine.close()
        finally:
            set_tracer(original)
        # One combined execution saw all four requests' contexts.
        (bound,) = spy.bound
        assert len(bound) == 4
        assert all(isinstance(ctx, RequestContext) for ctx in bound)
        assert all(ctx.hop == 0 for ctx in bound)
        assert len({ctx.trace_id for ctx in bound}) == 4
        document = chrome_trace(tracer)
        assert validate_flow_chains(document) == []
        chains = flow_chains(document)
        assert len(chains) == 4
        for events in chains.values():
            assert [e["ph"] for e in events] == ["s", "f"]

    def test_tracing_off_binds_no_context(self):
        """The hot path with tracing off: no context is minted, nothing
        is bound around execute, and the tracer records nothing."""

        class ContextSpy(StubSession):
            def __init__(self, **kw):
                super().__init__(**kw)
                self.bound = []

            def execute_bucket(self, inputs, batch, bucket):
                self.bound.append(active_contexts())
                return super().execute_bucket(inputs, batch, bucket)

        original = get_tracer()
        tracer = set_tracer(Tracer(enabled=False))
        try:
            spy = ContextSpy(buckets=(8,))
            engine = BatchingEngine(
                spy, max_batch=8, batch_timeout_us=5_000
            )
            future, _ = submit_rows(engine, 2)
            future.result(timeout=10)
            engine.close()
        finally:
            set_tracer(original)
        assert spy.bound == [()]
        assert len(tracer) == 0

    @pytest.mark.slow
    def test_tracing_off_submit_overhead_bounded(self):
        """Serving-throughput guard: with tracing disabled, submit() must
        stay in the tens of microseconds — no context minting, no span
        bookkeeping on the hot path."""
        original = get_tracer()
        set_tracer(Tracer(enabled=False))
        gate = threading.Event()
        try:
            stub = StubSession(buckets=(8,), block=gate)
            engine = BatchingEngine(
                stub, max_batch=8, batch_timeout_us=0, queue_depth=None
            )
            x = np.ones((1, 1), np.float32)
            for _ in range(100):  # warm allocator and code paths
                engine.submit({"x": x})
            n = 2000
            start = time.perf_counter()
            for _ in range(n):
                engine.submit({"x": x})
            elapsed = time.perf_counter() - start
            gate.set()
            engine.close(drain=True)
        finally:
            set_tracer(original)
        per_submit = elapsed / n
        # Generous bound (CI machines vary) but still catches an
        # accidental always-on span or per-call allocation storm.
        assert per_submit < 500e-6, f"submit took {per_submit * 1e6:.1f}us"

    def test_observability_spans_and_metrics(self):
        registry = set_registry(MetricsRegistry())
        tracer = set_tracer(Tracer(enabled=True))
        try:
            weights = mlp_weights()
            session = InferenceSession.for_workload(
                "MLP_1",
                weights=weights,
                batch_buckets=[32],
                batching="on",
                max_batch=8,
                batch_timeout_us=10_000,
            )
            rng = np.random.RandomState(3)
            futures = [
                session.submit({"x": rng.randn(4, 13).astype(np.float32)})
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=30)
            session.close()
            names = {record.name for record in tracer.records()}
            assert "batch.collect" in names
            assert "batch.execute" in names
            snapshot = registry.snapshot()
            assert snapshot["service.batch.executions"]["value"] >= 1
            assert snapshot["service.batch.requests"]["value"] == 4
            assert snapshot["service.batch.size"]["count"] >= 1
            assert (
                snapshot["service.batch.queue_wait_seconds"]["count"] == 4
            )
            assert "service.padding_rows" in snapshot
        finally:
            set_registry(MetricsRegistry())
            set_tracer(Tracer(enabled=False))


class TestDynamicBatchMode:
    """dynamic_batch sessions: one queue, no row bound, zero padding."""

    def test_stub_dynamic_coalesces_without_row_bound(self):
        stub = StubSession(buckets=())
        stub.buckets = None
        stub.dynamic_batch = "on"
        block = threading.Event()
        stub.block = block
        engine = BatchingEngine(
            stub, max_batch=4, batch_timeout_us=50_000
        )
        try:
            futures = [submit_rows(engine, b)[0] for b in (5, 7, 9)]
            block.set()
            for future, batch in zip(futures, (5, 7, 9)):
                assert future.result(timeout=30)["y"].shape[0] == batch
            # 21 combined rows would overflow any static bucket; the
            # dynamic queue shipped them in at most two exact windows.
            assert len(stub.calls) <= 2
            for batch, bucket in stub.calls:
                assert bucket == batch  # exact execution, no padding
        finally:
            stub.block = None
            engine.close()

    def test_real_dynamic_session_unpadded_and_identical(self):
        weights = mlp_weights()
        reference = InferenceSession.for_workload(
            "MLP_1", weights=weights, dynamic_batch="on"
        )
        with InferenceSession.for_workload(
            "MLP_1",
            weights=weights,
            dynamic_batch="on",
            batching="on",
            max_batch=8,
            batch_timeout_us=5_000,
        ) as sess:
            rng = np.random.RandomState(11)
            xs = {
                b: rng.randn(b, 13).astype(np.float32)
                for b in (1, 3, 8, 17, 32)
            }
            futures = {
                b: [sess.submit({"x": xs[b]}) for _ in range(2)]
                for b in xs
            }
            for b, futs in futures.items():
                want = next(iter(reference.run({"x": xs[b]}).values()))
                for future in futs:
                    got = next(iter(future.result(30).values()))
                    np.testing.assert_array_equal(got, want)
            stats = sess.engine.stats()
            assert stats.padded_rows == 0
            assert stats.completed == 10
        reference.close()
