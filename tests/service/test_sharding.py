"""ShardedSession: routing, identity, lifecycle, crash recovery.

The fleet must serve bit-identically to a single-process
InferenceSession over the same buckets, keep each partition signature in
exactly one worker, survive a SIGKILLed worker with zero failed
requests, and never leak a worker process or shared-memory segment.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import SessionClosedError
from repro.observability import (
    FLIGHT_DIR_ENV,
    Tracer,
    chrome_trace,
    flow_chains,
    get_tracer,
    set_tracer,
    validate_chrome_trace,
    validate_exposition_text,
    validate_flow_chains,
)
from repro.service import (
    ConsistentHashRing,
    InferenceSession,
    ModelSpec,
    ShardedSession,
    live_segments,
)
from repro.workloads import make_mlp_inputs


def mlp_weights(name="MLP_1", seed=0):
    inputs = make_mlp_inputs(name, 32, seed=seed)
    return {k: v for k, v in inputs.items() if k.startswith("w")}


def make_spec(name="MLP_1", buckets=(4, 8)):
    return ModelSpec(
        name=name,
        workload=name,
        weights=mlp_weights(name),
        batch_buckets=buckets,
    )


def outputs_equal(a, b):
    """Positional comparison: auto-generated tensor names differ across
    processes, but output order is the graph's output order."""
    va, vb = list(a.values()), list(b.values())
    return len(va) == len(vb) and all(
        np.array_equal(x, y) for x, y in zip(va, vb)
    )


class TestConsistentHashRing:
    def test_routing_is_stable(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        assert ring.node_for("abc") == ring.node_for("abc")
        again = ConsistentHashRing(["w2", "w0", "w1"])  # order-independent
        assert ring.node_for("abc") == again.node_for("abc")

    def test_removal_only_rehomes_removed_nodes_keys(self):
        ring = ConsistentHashRing([f"w{i}" for i in range(4)])
        keys = [f"sig-{i}" for i in range(200)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("w2")
        for key in keys:
            if before[key] != "w2":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "w2"

    def test_preference_starts_at_home_and_covers_all(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        order = ring.preference("some-key")
        assert order[0] == ring.node_for("some-key")
        assert sorted(order) == ["w0", "w1", "w2"]

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = ConsistentHashRing(["w0"])
        with pytest.raises(ValueError):
            ring.add("w0")
        with pytest.raises(ValueError):
            ring.remove("w9")
        ring.remove("w0")
        with pytest.raises(ValueError):
            ring.node_for("anything")


class TestModelSpec:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ModelSpec(name="m")
        with pytest.raises(ValueError, match="exactly one"):
            ModelSpec(name="m", workload="MLP_1", builder=lambda b: None)

    def test_unknown_workload_rejected_on_resolve(self):
        spec = ModelSpec(name="m", workload="NOPE")
        with pytest.raises(ValueError, match="unknown workload"):
            spec.resolve_builder()

    def test_bucket_for(self):
        spec = ModelSpec(name="m", workload="MLP_1", batch_buckets=(4, 8))
        assert spec.bucket_for(1) == 4
        assert spec.bucket_for(4) == 4
        assert spec.bucket_for(5) == 8
        assert spec.bucket_for(9) == 9  # beyond largest: exact


@pytest.fixture(scope="module")
def fleet():
    session = ShardedSession([make_spec()], num_workers=2)
    session.warm_up()
    yield session
    session.close()


@pytest.fixture(scope="module")
def reference():
    session = InferenceSession.for_workload(
        "MLP_1", weights=mlp_weights(), batch_buckets=(4, 8)
    )
    yield session
    session.close()


class TestServing:
    def test_bit_identical_to_single_session(self, fleet, reference):
        x = make_mlp_inputs("MLP_1", 8, seed=3)["x"]
        assert outputs_equal(fleet.run({"x": x}), reference.run({"x": x}))

    def test_bucket_rounding_matches_single_session(self, fleet, reference):
        x = make_mlp_inputs("MLP_1", 3, seed=4)["x"]
        assert outputs_equal(fleet.run({"x": x}), reference.run({"x": x}))

    def test_concurrent_submits_all_settle_identically(
        self, fleet, reference
    ):
        x = make_mlp_inputs("MLP_1", 8, seed=5)["x"]
        expected = reference.run({"x": x})
        futures = [fleet.submit({"x": x}) for _ in range(24)]
        for future in futures:
            assert outputs_equal(future.result(timeout=60), expected)

    def test_missing_input_rejected(self, fleet):
        with pytest.raises(ValueError, match="missing input"):
            fleet.submit({"wrong": np.zeros((4, 13), np.float32)})

    def test_unknown_model_rejected(self, fleet):
        x = np.zeros((4, 13), np.float32)
        with pytest.raises(ValueError, match="unknown model"):
            fleet.submit({"x": x}, model="NOPE")

    def test_each_signature_compiles_in_exactly_one_worker(self, fleet):
        stats = fleet.stats()
        owners = {}
        for worker, worker_stats in stats.workers.items():
            for sig in worker_stats.signatures:
                if sig.compiles:
                    owners.setdefault(sig.signature, []).append(worker)
        assert owners, "warm-up should have compiled the buckets"
        for signature, workers in owners.items():
            assert len(workers) == 1, (
                f"signature {signature[:12]} compiled in {workers}"
            )
        # Both (model, bucket) pairs were compiled, each exactly once.
        merged = {s.signature: s for s in stats.merged.signatures}
        assert len(merged) == 2
        assert all(s.compiles == 1 for s in merged.values())

    def test_routing_is_stable_and_spread(self, fleet):
        first = fleet.worker_for("MLP_1", 8)
        assert fleet.worker_for("MLP_1", 8) == first
        homes = {fleet.worker_for("MLP_1", b) for b in (3, 8)}
        # Bounded-load assignment spreads 2 signatures over 2 workers.
        assert len(homes) == 2

    def test_stats_aggregate_fleet_wide(self, fleet):
        stats = fleet.stats()
        assert stats.requests > 0
        assert stats.merged.compiles == sum(
            ws.compiles for ws in stats.workers.values()
        )
        placement = stats.placement()
        assert set(placement) == set(fleet.workers())

    def test_worker_info_snapshot(self, fleet):
        info = fleet.workers()
        assert sorted(info) == ["w0", "w1"]
        for worker in info.values():
            assert worker.alive
            assert worker.pid is not None
            assert worker.incarnation == 0


class TestMultiModel:
    def test_two_models_route_and_serve(self):
        specs = [make_spec("MLP_1"), make_spec("MLP_2", buckets=(4,))]
        with ShardedSession(specs, num_workers=2) as session:
            session.warm_up()
            x1 = make_mlp_inputs("MLP_1", 4, seed=6)["x"]
            x2 = make_mlp_inputs("MLP_2", 4, seed=6)["x"]
            out1 = session.run({"x": x1}, model="MLP_1")
            out2 = session.run({"x": x2}, model="MLP_2")
            assert next(iter(out1.values())).shape[0] == 4
            assert next(iter(out2.values())).shape[0] == 4
            with pytest.raises(ValueError, match="pass model="):
                session.submit({"x": x1})

    def test_for_workloads_constructor(self):
        weights = {
            "MLP_1": mlp_weights("MLP_1"),
            "MLP_2": mlp_weights("MLP_2"),
        }
        session = ShardedSession.for_workloads(
            ["MLP_1", "MLP_2"],
            weights=weights,
            batch_buckets=(4,),
            num_workers=2,
        )
        try:
            assert session.models == ["MLP_1", "MLP_2"]
        finally:
            session.close()


class TestLifecycle:
    def test_submit_after_close_raises(self):
        session = ShardedSession([make_spec()], num_workers=1)
        session.close()
        with pytest.raises(SessionClosedError):
            session.submit({"x": np.zeros((4, 13), np.float32)})

    def test_close_is_idempotent_under_concurrency(self):
        session = ShardedSession([make_spec()], num_workers=1)
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            try:
                barrier.wait()
                session.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert session.closed

    def test_close_drains_in_flight_requests(self):
        session = ShardedSession([make_spec()], num_workers=1)
        x = make_mlp_inputs("MLP_1", 8, seed=7)["x"]
        futures = [session.submit({"x": x}) for _ in range(8)]
        session.close(drain=True)
        for future in futures:
            out = future.result(timeout=5)  # already settled
            assert next(iter(out.values())).shape[0] == 8

    def test_close_leaves_no_workers_or_segments(self):
        before = set(live_segments())
        session = ShardedSession([make_spec()], num_workers=2)
        assert len(set(live_segments()) - before) == 2  # one ring/worker
        pids = [info.pid for info in session.workers().values()]
        session.close()
        assert set(live_segments()) == before
        deadline = time.monotonic() + 10
        for pid in pids:
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:  # pragma: no cover - diagnostic
                pytest.fail(f"worker pid {pid} still alive after close")

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedSession([make_spec()], num_workers=0)
        with pytest.raises(ValueError, match="at least one model"):
            ShardedSession([])
        with pytest.raises(ValueError, match="duplicate"):
            ShardedSession([make_spec(), make_spec()])


class TestTelemetry:
    def test_flow_chains_stitch_front_end_to_workers(self):
        """The acceptance walk: every request's flow chain starts at the
        front end ("s"), relays through the worker's spans ("t"), and
        terminates back at the front end ("f") — across process rows."""
        original = get_tracer()
        tracer = set_tracer(Tracer(enabled=True))
        try:
            # Workers inherit the tracer's enabled flag at spawn time.
            session = ShardedSession(
                [make_spec(buckets=(8,))], num_workers=2
            )
            try:
                session.warm_up()
                x = make_mlp_inputs("MLP_1", 8, seed=21)["x"]
                futures = [session.submit({"x": x}) for _ in range(6)]
                for future in futures:
                    future.result(timeout=120)
                spans = session.collect_worker_spans()
            finally:
                session.close()
            document = chrome_trace(tracer, processes=spans)
        finally:
            set_tracer(original)
        assert validate_chrome_trace(document) == []
        assert validate_flow_chains(document) == []
        chains = flow_chains(document)
        assert len(chains) >= 6  # warm-up requests trace too
        front_pid = 1
        for events in chains.values():
            phases = [e["ph"] for e in events]
            assert phases[0] == "s" and phases[-1] == "f"
            assert all(ph == "t" for ph in phases[1:-1])
            pids = {e["pid"] for e in events}
            # Minted and terminated at the front end, relayed in a worker.
            assert events[0]["pid"] == front_pid
            assert events[-1]["pid"] == front_pid
            assert pids - {front_pid}, "chain never entered a worker"

    def test_metrics_text_merges_fleet(self, fleet):
        x = make_mlp_inputs("MLP_1", 8, seed=22)["x"]
        fleet.run({"x": x})
        text = fleet.metrics_text()
        assert validate_exposition_text(text) == []
        # Front-end counters and worker-side counters in one scrape.
        assert "service_shard_requests" in text
        assert "service_worker_requests" in text
        assert 'service_shard_slot_wait_seconds{quantile="0.95"}' in text

    def test_worker_death_leaves_flight_dump(self, monkeypatch, tmp_path):
        tmp = str(tmp_path)
        monkeypatch.setenv(FLIGHT_DIR_ENV, tmp)
        session = ShardedSession(
            [make_spec(buckets=(8,))],
            num_workers=2,
            heartbeat_interval=0.1,
        )
        try:
            session.warm_up()
            x = make_mlp_inputs("MLP_1", 8, seed=23)["x"]
            target = session.worker_for("MLP_1", 8)
            victim = session.workers()[target]
            # Run some load, then give the heartbeat a couple of cycles
            # to piggyback the victim's flight ring back to the parent.
            for _ in range(4):
                session.run({"x": x})
            time.sleep(0.4)
            futures = [session.submit({"x": x}) for _ in range(10)]
            os.kill(victim.pid, signal.SIGKILL)
            results = [f.result(timeout=120) for f in futures]
            assert len(results) == 10
            assert all(r is not None for r in results)
        finally:
            session.close()
        dumps = [f for f in os.listdir(tmp) if "worker-death" in f]
        assert dumps, "worker death should have dumped a flight trace"
        path = os.path.join(tmp, sorted(dumps)[0])
        assert validate_chrome_trace(json.load(open(path))) == []
        document = json.load(open(path))
        other = document["otherData"]
        assert other["flight_reason"] == "worker-death"
        assert other["flight_attrs"]["worker"] == target
        assert other["flight_attrs"]["incarnation"] == 0
        names = {e["name"] for e in document["traceEvents"]}
        assert "shard.worker_death" in names
        # The dead worker's piggybacked ring renders as its own process
        # row carrying its last recorded requests.
        process_rows = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert f"shard-{target}#0" in process_rows
        assert "worker.start" in names or "worker.request" in names


class TestCrashRecovery:
    def test_killed_worker_restarts_with_zero_failed_requests(self):
        before = set(live_segments())
        session = ShardedSession(
            [make_spec(buckets=(8,))],
            num_workers=2,
            heartbeat_interval=0.1,
        )
        try:
            session.warm_up()
            x = make_mlp_inputs("MLP_1", 8, seed=8)["x"]
            target = session.worker_for("MLP_1", 8)
            victim = session.workers()[target]
            futures = [session.submit({"x": x}) for _ in range(10)]
            os.kill(victim.pid, signal.SIGKILL)
            futures += [session.submit({"x": x}) for _ in range(10)]
            results = [f.result(timeout=120) for f in futures]
            assert len(results) == 20
            assert all(r is not None for r in results)
            restarted = session.workers()[target]
            assert restarted.alive
            assert restarted.pid != victim.pid
            assert restarted.incarnation == victim.incarnation + 1
            stats = session.stats()
            assert stats.restarts[target] == 1
        finally:
            session.close()
        assert set(live_segments()) == before

    def test_signature_recompiles_after_restart(self):
        session = ShardedSession(
            [make_spec(buckets=(8,))],
            num_workers=1,
            heartbeat_interval=0.1,
        )
        try:
            session.warm_up()
            x = make_mlp_inputs("MLP_1", 8, seed=9)["x"]
            first = session.run({"x": x})
            victim = session.workers()["w0"]
            os.kill(victim.pid, signal.SIGKILL)
            # Wait for the heartbeat to install the replacement.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                info = session.workers()["w0"]
                if info.alive and info.incarnation == 1:
                    break
                time.sleep(0.05)
            second = session.run({"x": x})
            assert outputs_equal(first, second)
            # The dead incarnation's stats died with it; the replacement
            # showing a fresh compile proves the signature recompiled.
            merged = session.stats().merged
            sig = next(s for s in merged.signatures if s.executes)
            assert sig.compiles == 1
            assert session.stats().restarts["w0"] == 1
        finally:
            session.close()


class TestDynamicBatchFleet:
    """dynamic_batch='on': one signature per model, exact execution."""

    def test_dynamic_fleet_round_trip(self):
        weights = mlp_weights()
        reference = InferenceSession.for_workload(
            "MLP_1", weights=weights, dynamic_batch="on"
        )
        with ShardedSession(
            [ModelSpec(name="MLP_1", workload="MLP_1", weights=weights)],
            num_workers=2,
            dynamic_batch="on",
            warmup=True,
        ) as session:
            assert session.dynamic_batch == "on"
            batches = (1, 3, 8, 17, 32)
            # One signature -> every batch shares one home worker.
            assert len({session.worker_for("MLP_1", b) for b in batches}) == 1
            rng = np.random.RandomState(13)
            for batch in batches:
                x = rng.randn(batch, 13).astype(np.float32)
                got = next(iter(session.run({"x": x}).values()))
                want = next(iter(reference.run({"x": x}).values()))
                np.testing.assert_array_equal(got, want)
            stats = session.stats()
            assert stats.merged.compiles == 1
            padded = sum(
                b.padded_rows
                for per_model in stats.batching.values()
                for b in per_model.values()
            )
            assert padded == 0
        reference.close()

    def test_dynamic_mode_validation(self):
        with pytest.raises(ValueError, match="dynamic_batch"):
            ShardedSession(
                [make_spec()], num_workers=1, dynamic_batch="sometimes"
            )
