"""PartitionCache: single-flight deduplication, LRU byte-budget eviction."""

import threading

import pytest

from repro import DType, GraphBuilder, compile_counter, compile_graph
from repro.service import PartitionCache, graph_signature, partition_nbytes
from repro.workloads import build_mlp_graph


def tiny_graph(k=32, n=16):
    b = GraphBuilder("tiny")
    x = b.input("x", DType.f32, (8, k))
    w = b.constant("w", dtype=DType.f32, shape=(k, n))
    b.output(b.relu(b.matmul(x, w)))
    return b.finish()


class TestBasics:
    def test_miss_then_hit(self):
        cache = PartitionCache()
        sig = graph_signature(tiny_graph())
        p1 = cache.get_or_compile(sig, lambda: compile_graph(tiny_graph()))
        p2 = cache.get_or_compile(sig, lambda: compile_graph(tiny_graph()))
        assert p1 is p2
        stats = cache.stats()
        assert stats.compiles == 1
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.hit_rate == 0.5

    def test_compile_error_propagates_and_retries(self):
        cache = PartitionCache()

        def boom():
            raise RuntimeError("no backend")

        with pytest.raises(RuntimeError, match="no backend"):
            cache.get_or_compile("sig-x", boom)
        # A failed compile leaves no poisoned entry behind.
        p = cache.get_or_compile(
            "sig-x", lambda: compile_graph(tiny_graph())
        )
        assert p is not None
        assert cache.stats().compiles == 1

    def test_partition_nbytes_accounts_weights_and_arena(self):
        p = compile_graph(build_mlp_graph("MLP_1", 32))
        estimate = partition_nbytes(p)
        assert estimate > 0
        # After init the charge reflects the actual cached buffers.
        from repro.workloads import make_mlp_inputs

        p.execute(make_mlp_inputs("MLP_1", 32))
        actual = partition_nbytes(p)
        assert actual == p.cached_bytes + p.arena_size
        assert actual > 0


class TestSingleFlight:
    def test_eight_threads_one_compilation(self):
        """The ISSUE acceptance stress: >=8 concurrent requests for one
        signature -> exactly 1 compilation and >=7 cache hits."""
        cache = PartitionCache()
        sig = graph_signature(build_mlp_graph("MLP_1", 32))
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = cache.get_or_compile(
                    sig,
                    lambda: compile_graph(build_mlp_graph("MLP_1", 32)),
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with compile_counter() as counter:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        assert counter.count == 1, "single-flight must compile exactly once"
        assert all(r is results[0] for r in results)
        stats = cache.stats()
        assert stats.compiles == 1
        assert stats.misses == 1
        assert stats.hits >= 7
        assert stats.in_flight == 0

    def test_different_signatures_compile_independently(self):
        cache = PartitionCache()
        sig_a = graph_signature(tiny_graph(k=32))
        sig_b = graph_signature(tiny_graph(k=64))
        cache.get_or_compile(sig_a, lambda: compile_graph(tiny_graph(k=32)))
        cache.get_or_compile(sig_b, lambda: compile_graph(tiny_graph(k=64)))
        assert cache.stats().compiles == 2
        assert len(cache) == 2


class TestEviction:
    def test_max_entries_lru_order(self):
        cache = PartitionCache(max_entries=2)
        sigs = []
        for k in (32, 48, 64):
            g = tiny_graph(k=k)
            sig = graph_signature(g)
            sigs.append(sig)
            cache.get_or_compile(sig, lambda g=g: compile_graph(g))
        assert len(cache) == 2
        assert sigs[0] not in cache  # least recently used went first
        assert sigs[1] in cache and sigs[2] in cache
        assert cache.stats().evictions == 1
        # Touching sigs[1] makes sigs[2] the LRU victim.
        cache.get_or_compile(
            sigs[1], lambda: compile_graph(tiny_graph(k=48))
        )
        g = tiny_graph(k=80)
        cache.get_or_compile(graph_signature(g), lambda: compile_graph(g))
        assert sigs[1] in cache
        assert sigs[2] not in cache

    def test_byte_budget_eviction_and_recompile(self):
        # Measure the three buckets' real footprint, then shrink the
        # budget below it so LRU eviction must kick in.
        buckets = (32, 64, 128)
        sizes = {}
        for batch in buckets:
            p = compile_graph(build_mlp_graph("MLP_1", batch))
            sizes[batch] = partition_nbytes(p)
        total = sum(sizes.values())
        cache = PartitionCache(capacity_bytes=total - 1)
        with compile_counter() as counter:
            for batch in buckets:
                g = build_mlp_graph("MLP_1", batch)
                cache.get_or_compile(
                    graph_signature(g), lambda g=g: compile_graph(g)
                )
            assert counter.count == 3
            stats = cache.stats()
            assert stats.evictions >= 1
            assert stats.resident_bytes <= total - 1
            # Re-requesting the evicted signature recompiles (a miss).
            g = build_mlp_graph("MLP_1", buckets[0])
            cache.get_or_compile(
                graph_signature(g), lambda g=g: compile_graph(g)
            )
            assert counter.count == 4

    def test_zero_budget_holds_nothing(self):
        cache = PartitionCache(capacity_bytes=0)
        g = tiny_graph()
        sig = graph_signature(g)
        p = cache.get_or_compile(sig, lambda: compile_graph(g))
        assert p is not None  # caller still gets the partition
        assert len(cache) == 0
        assert cache.stats().evictions == 1

    def test_clear(self):
        cache = PartitionCache()
        g = tiny_graph()
        cache.get_or_compile(graph_signature(g), lambda: compile_graph(g))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().compiles == 1  # counters survive


class TestStatsSnapshot:
    def test_execute_counts_and_labels(self):
        cache = PartitionCache()
        g = tiny_graph()
        sig = graph_signature(g)
        cache.get_or_compile(
            sig, lambda: compile_graph(g), label="tiny@b8"
        )
        cache.note_execute(sig)
        cache.note_execute(sig, count=2)
        record = {s.signature: s for s in cache.stats().signatures}[sig]
        assert record.executes == 3
        assert record.label == "tiny@b8"
        assert record.compile_seconds > 0
        assert record.resident

    def test_format_stats_mentions_counters(self):
        from repro.service import format_stats

        cache = PartitionCache()
        g = tiny_graph()
        cache.get_or_compile(graph_signature(g), lambda: compile_graph(g))
        text = format_stats(cache.stats())
        assert "ServiceStats" in text
        assert "hit_rate" in text
        assert "compiles=1" in text


class TestEvictionClosesPartitions:
    """ISSUE satellite: evicted partitions must release their thread
    pools and cached buffers, not leak until interpreter exit."""

    def warmed_partition(self, k):
        import numpy as np

        g = tiny_graph(k=k)
        p = compile_graph(g)
        p.num_threads = 2  # force a pool so close() has work to do
        p.execute(
            {
                "x": np.zeros((8, k), np.float32),
                "w": np.zeros((k, 16), np.float32),
            }
        )
        assert p.has_active_pool
        return g, p

    def test_lru_eviction_closes_victim(self):
        cache = PartitionCache(max_entries=1)
        g1, p1 = self.warmed_partition(32)
        cache.get_or_compile(graph_signature(g1), lambda: p1)
        g2, p2 = self.warmed_partition(48)
        cache.get_or_compile(graph_signature(g2), lambda: p2)
        assert cache.stats().evictions == 1
        assert not p1.has_active_pool  # victim was closed
        assert p2.has_active_pool  # resident entry untouched

    def test_clear_and_close_close_residents(self):
        cache = PartitionCache()
        _, p1 = self.warmed_partition(32)
        _, p2 = self.warmed_partition(48)
        cache.get_or_compile("sig-1", lambda: p1)
        cache.get_or_compile("sig-2", lambda: p2)
        assert cache.resident_partitions() == [p1, p2]
        cache.clear()
        assert not p1.has_active_pool
        assert not p2.has_active_pool
        assert len(cache) == 0
        # close() is the teardown alias of clear().
        _, p3 = self.warmed_partition(64)
        cache.get_or_compile("sig-3", lambda: p3)
        cache.close()
        assert not p3.has_active_pool

    def test_closed_then_reused_partition_rebuilds_pool(self):
        # A racing execute against a just-evicted partition degrades
        # (rebuilds the pool) instead of crashing.
        import numpy as np

        _, p = self.warmed_partition(32)
        p.close()
        assert not p.has_active_pool
        out = p.execute(
            {
                "x": np.ones((8, 32), np.float32),
                "w": np.ones((32, 16), np.float32),
            }
        )
        assert next(iter(out.values())).shape == (8, 16)


class TestUtilizationAccounting:
    def test_note_execute_rows_roll_up(self):
        from repro.service import format_stats

        cache = PartitionCache()
        g = tiny_graph()
        sig = graph_signature(g)
        cache.get_or_compile(sig, lambda: compile_graph(g))
        cache.note_execute(sig, rows_requested=20, rows_computed=32)
        cache.note_execute(sig, rows_requested=32, rows_computed=32)
        record = {s.signature: s for s in cache.stats().signatures}[sig]
        assert record.rows_requested == 52
        assert record.rows_computed == 64
        assert record.padded_rows == 12
        assert record.utilization == pytest.approx(52 / 64)
        stats = cache.stats()
        assert stats.padded_rows == 12
        assert stats.utilization == pytest.approx(52 / 64)
        text = format_stats(stats)
        assert "padded_rows=12" in text
        assert "util" in text


class TestAdaptiveSurface:
    """peek / swap / pin: the adaptive retuner's cache API."""

    def test_peek_does_not_touch_counters_or_lru(self):
        cache = PartitionCache()
        g = tiny_graph()
        sig = graph_signature(g)
        p = cache.get_or_compile(sig, lambda: compile_graph(g))
        before = cache.stats()
        assert cache.peek(sig) is p
        assert cache.peek("absent") is None
        after = cache.stats()
        assert after.hits == before.hits
        assert after.misses == before.misses

    def test_swap_replaces_resident_partition(self):
        cache = PartitionCache()
        g = tiny_graph()
        sig = graph_signature(g)
        original = cache.get_or_compile(sig, lambda: compile_graph(g))
        replacement = compile_graph(tiny_graph())
        displaced = cache.swap(sig, replacement, label="retuned")
        assert displaced is original
        assert cache.get(sig) is replacement
        record = {s.signature: s for s in cache.stats().signatures}[sig]
        assert record.swaps == 1
        assert record.label == "retuned"
        assert cache.stats().swaps == 1

    def test_swap_missing_signature_is_a_noop(self):
        cache = PartitionCache()
        replacement = compile_graph(tiny_graph())
        assert cache.swap("absent", replacement) is None
        assert cache.stats().swaps == 0

    def test_pinned_signature_survives_eviction(self):
        # Budget for one entry; the pinned one must not be the victim.
        g1, g2 = tiny_graph(), tiny_graph(k=64)
        cache = PartitionCache(max_entries=1)
        sig1, sig2 = graph_signature(g1), graph_signature(g2)
        p1 = cache.get_or_compile(sig1, lambda: compile_graph(g1))
        assert cache.pin(sig1)
        cache.get_or_compile(sig2, lambda: compile_graph(g2))
        assert cache.peek(sig1) is p1  # pinned: still resident
        cache.unpin(sig1)
        assert cache.pinned() == []
        cache.get_or_compile(sig2, lambda: compile_graph(g2))
        assert cache.peek(sig1) is None  # unpinned: evictable again

    def test_pin_missing_signature_fails(self):
        cache = PartitionCache()
        assert cache.pin("absent") is False
        cache.unpin("absent")  # idempotent, no error

    def test_latency_ewma_tracks_note_execute(self):
        cache = PartitionCache()
        g = tiny_graph()
        sig = graph_signature(g)
        cache.get_or_compile(sig, lambda: compile_graph(g))
        cache.note_execute(sig, latency_seconds=1e-3)
        record = {s.signature: s for s in cache.stats().signatures}[sig]
        # First sample seeds the EWMA exactly.
        assert record.latency_ewma_seconds == pytest.approx(1e-3)
        assert record.latency_samples == 1
        cache.note_execute(sig, latency_seconds=2e-3)
        record = {s.signature: s for s in cache.stats().signatures}[sig]
        alpha = cache.ewma_alpha
        assert record.latency_ewma_seconds == pytest.approx(
            (1 - alpha) * 1e-3 + alpha * 2e-3
        )
        assert record.latency_samples == 2
        assert record.latency_ewma_ms == pytest.approx(
            record.latency_ewma_seconds * 1e3
        )
