"""TensorRing shared-memory transport: round-trips, backpressure, leaks.

The transport must move any ndarray the serving tier produces through a
named shared-memory slot bit-for-bit (dtypes, non-contiguous views,
zero-length arrays), block submitters when every slot is in flight, and
never leak a segment — including when the attaching process dies without
cleaning up.
"""

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import SlotOverflowError, TransportError
from repro.service.shm import (
    TensorRing,
    TensorSpec,
    live_segments,
    request_nbytes,
)


def roundtrip(ring, arrays):
    slot = ring.lease()
    try:
        specs = ring.write(slot, arrays)
        return specs, ring.read(slot, specs, copy=True)
    finally:
        ring.release(slot)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float16, np.int8, np.int32, np.uint8]
    )
    def test_dtypes_roundtrip_bit_identical(self, dtype):
        rng = np.random.RandomState(0)
        if np.issubdtype(dtype, np.floating):
            array = rng.randn(7, 13).astype(dtype)
        else:
            array = rng.randint(-100, 100, (7, 13)).astype(dtype)
        with TensorRing(slots=2, slot_bytes=4096) as ring:
            specs, out = roundtrip(ring, {"x": array})
            assert out["x"].dtype == array.dtype
            assert np.array_equal(out["x"], array)
            assert specs[0].dtype == np.dtype(dtype).str

    def test_multiple_tensors_one_slot(self):
        arrays = {
            "a": np.arange(24, dtype=np.float32).reshape(2, 3, 4),
            "b": np.full((5,), 7, dtype=np.int8),
            "c": np.array(3.5, dtype=np.float64),  # zero-rank scalar
        }
        with TensorRing(slots=1, slot_bytes=4096) as ring:
            _, out = roundtrip(ring, arrays)
            assert sorted(out) == ["a", "b", "c"]
            for name, array in arrays.items():
                assert np.array_equal(out[name], array)
                assert out[name].shape == array.shape

    def test_non_contiguous_arrays(self):
        base = np.arange(64, dtype=np.float32).reshape(8, 8)
        arrays = {
            "strided": base[::2, 1::3],  # non-contiguous view
            "transposed": base.T,  # F-ordered
        }
        assert not arrays["strided"].flags["C_CONTIGUOUS"]
        assert not arrays["transposed"].flags["C_CONTIGUOUS"]
        with TensorRing(slots=1, slot_bytes=4096) as ring:
            _, out = roundtrip(ring, arrays)
            assert np.array_equal(out["strided"], arrays["strided"])
            assert np.array_equal(out["transposed"], arrays["transposed"])
            # The reader gets ordinary C-contiguous arrays back.
            assert out["transposed"].flags["C_CONTIGUOUS"]

    def test_zero_length_arrays(self):
        arrays = {
            "empty": np.empty((0, 4), dtype=np.float32),
            "data": np.ones((3,), dtype=np.float32),
        }
        with TensorRing(slots=1, slot_bytes=256) as ring:
            _, out = roundtrip(ring, arrays)
            assert out["empty"].shape == (0, 4)
            assert out["empty"].dtype == np.float32
            assert np.array_equal(out["data"], arrays["data"])

    def test_zero_copy_read_views_segment(self):
        array = np.arange(8, dtype=np.float32)
        with TensorRing(slots=1, slot_bytes=256) as ring:
            slot = ring.lease()
            specs = ring.write(slot, {"x": array})
            view = ring.read(slot, specs, copy=False)["x"]
            copy = ring.read(slot, specs, copy=True)["x"]
            assert not view.flags["OWNDATA"]
            # Overwriting the slot is visible through the view, not the copy.
            ring.write(slot, {"x": array * 2})
            assert np.array_equal(view, array * 2)
            assert np.array_equal(copy, array)
            ring.release(slot)

    def test_request_nbytes_covers_packed_size(self):
        arrays = {
            "a": np.zeros((3, 5), dtype=np.float32),
            "b": np.zeros((7,), dtype=np.int8),
        }
        need = request_nbytes(arrays)
        with TensorRing(slots=1, slot_bytes=max(64, need)) as ring:
            _, out = roundtrip(ring, arrays)  # exactly-sized slot fits
            assert sorted(out) == ["a", "b"]


class TestBackpressure:
    def test_lease_blocks_until_release(self):
        with TensorRing(slots=1, slot_bytes=256) as ring:
            slot = ring.lease()
            acquired = []

            def waiter():
                acquired.append(ring.lease())

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            assert not acquired  # exhausted: the waiter is blocked
            ring.release(slot)
            thread.join(timeout=5)
            assert acquired == [slot]

    def test_lease_timeout_raises(self):
        with TensorRing(slots=1, slot_bytes=256) as ring:
            ring.lease()
            start = time.perf_counter()
            with pytest.raises(TransportError, match="no free slot"):
                ring.lease(timeout=0.05)
            assert time.perf_counter() - start < 2.0

    def test_close_wakes_blocked_lease(self):
        ring = TensorRing(slots=1, slot_bytes=256)
        ring.lease()
        errors = []

        def waiter():
            try:
                ring.lease()
            except TransportError as exc:
                errors.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        ring.close()
        thread.join(timeout=5)
        assert len(errors) == 1

    def test_slot_overflow_raises(self):
        with TensorRing(slots=1, slot_bytes=256) as ring:
            slot = ring.lease()
            big = np.zeros((1024,), dtype=np.float32)
            with pytest.raises(SlotOverflowError):
                ring.write(slot, {"x": big})
            ring.release(slot)

    def test_double_release_rejected(self):
        with TensorRing(slots=2, slot_bytes=256) as ring:
            slot = ring.lease()
            ring.release(slot)
            with pytest.raises(TransportError, match="not leased"):
                ring.release(slot)


class TestAttach:
    def test_attach_missing_segment_raises(self):
        with pytest.raises(TransportError, match="does not exist"):
            TensorRing.attach("repro-test-no-such-segment", 1, 256)

    def test_attach_bad_geometry_raises(self):
        with TensorRing(slots=1, slot_bytes=256) as ring:
            with pytest.raises(TransportError, match="geometry"):
                TensorRing.attach(ring.name, 64, 4096)

    def test_attacher_cannot_lease(self):
        with TensorRing(slots=1, slot_bytes=256) as ring:
            attached = TensorRing.attach(ring.name, 1, 256)
            with pytest.raises(TransportError, match="owner"):
                attached.lease()
            attached.close()

    def test_cross_reference_via_specs(self):
        """An attacher reads exactly what the owner wrote, by spec."""
        array = np.arange(12, dtype=np.float32).reshape(3, 4)
        with TensorRing(slots=2, slot_bytes=512) as ring:
            attached = TensorRing.attach(ring.name, 2, 512)
            slot = ring.lease()
            specs = ring.write(slot, {"x": array})
            out = attached.read(slot, specs, copy=True)
            assert np.array_equal(out["x"], array)
            # And the reverse direction: attacher writes, owner reads.
            specs = attached.write(slot, {"y": array * 3})
            back = ring.read(slot, specs, copy=True)
            assert np.array_equal(back["y"], array * 3)
            ring.release(slot)
            attached.close()


class TestLeaks:
    def test_close_unlinks_and_untracks(self):
        before = live_segments()
        ring = TensorRing(slots=2, slot_bytes=256)
        assert ring.name in live_segments()
        ring.close()
        assert live_segments() == before
        # The named segment is actually gone, not just untracked.
        with pytest.raises(TransportError, match="does not exist"):
            TensorRing.attach(ring.name, 2, 256)

    def test_close_is_idempotent(self):
        ring = TensorRing(slots=1, slot_bytes=256)
        ring.close()
        ring.close()
        assert ring.closed

    def test_owner_unlinks_even_if_attacher_process_dies(self):
        """A crashed attacher must not leak (or unlink) the segment."""
        ring = TensorRing(slots=1, slot_bytes=256)

        def child(name):
            attached = TensorRing.attach(name, 1, 256)
            assert attached is not None
            os.kill(os.getpid(), signal.SIGKILL)  # die without cleanup

        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        process = ctx.Process(target=child, args=(ring.name,))
        process.start()
        process.join(timeout=30)
        assert process.exitcode == -signal.SIGKILL
        # Owner still works after the attacher crashed...
        slot = ring.lease()
        specs = ring.write(slot, {"x": np.ones(4, dtype=np.float32)})
        assert isinstance(specs[0], TensorSpec)
        ring.release(slot)
        # ...and still owns the (single) unlink.
        ring.close()
        assert ring.name not in live_segments()

    def test_operations_after_close_raise(self):
        ring = TensorRing(slots=1, slot_bytes=256)
        slot = ring.lease()
        ring.close()
        with pytest.raises(TransportError):
            ring.write(slot, {"x": np.ones(2, dtype=np.float32)})
        with pytest.raises(TransportError):
            ring.lease()
