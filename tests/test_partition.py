"""Tests for the CompiledPartition public API."""

import threading

import numpy as np
import pytest

from repro import CompilerOptions, DType, GraphBuilder, compile_graph
from repro.errors import ExecutionError


def make_partition():
    b = GraphBuilder("p")
    x = b.input("x", DType.f32, (16, 32))
    w = b.constant("w", dtype=DType.f32, shape=(32, 16))
    b.output(b.relu(b.matmul(x, w)))
    return compile_graph(b.finish())


class TestIntrospection:
    def test_names(self):
        p = make_partition()
        assert p.input_names == ["x"]
        assert p.weight_names == ["w"]
        assert len(p.output_names) == 1

    def test_not_initialized_before_first_run(self):
        p = make_partition()
        assert not p.is_initialized

    def test_initialized_after_first_run(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        p.execute(
            {
                "x": rng.randn(16, 32).astype(np.float32),
                "w": rng.randn(32, 16).astype(np.float32),
            }
        )
        assert p.is_initialized

    def test_stats_available(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        p.execute(
            {
                "x": rng.randn(16, 32).astype(np.float32),
                "w": rng.randn(32, 16).astype(np.float32),
            }
        )
        assert p.last_stats is not None
        assert p.last_stats.brgemm_calls > 0
        assert p.init_stats is not None
        assert p.init_stats.pack_stmts > 0  # weight prepack


class TestExecuteValidation:
    def test_missing_activation(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="missing input"):
            p.execute({"w": np.zeros((32, 16), np.float32)})

    def test_wrong_shape(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="shape"):
            p.execute(
                {
                    "x": np.zeros((16, 33), np.float32),
                    "w": np.zeros((32, 16), np.float32),
                }
            )

    def test_wrong_dtype(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="dtype"):
            p.execute(
                {
                    "x": np.zeros((16, 32), np.float64),
                    "w": np.zeros((32, 16), np.float32),
                }
            )

    def test_weights_ignored_after_first_run(self):
        """Weights passed on later runs are ignored — constants are cached
        (the paper's runtime-constant contract)."""
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        first = list(p.execute({"x": x, "w": w}).values())[0]
        other_w = rng.randn(32, 16).astype(np.float32)
        second = list(p.execute({"x": x, "w": other_w}).values())[0]
        np.testing.assert_array_equal(first, second)

    def test_non_contiguous_input_accepted(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(32, 32).astype(np.float32)[::2]  # strided view
        w = rng.randn(32, 16).astype(np.float32)
        out = list(p.execute({"x": x, "w": w}).values())[0]
        np.testing.assert_allclose(
            out, np.maximum(np.ascontiguousarray(x) @ w, 0), rtol=1e-4,
            atol=1e-4,
        )

    def test_outputs_are_fresh_buffers(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        out1 = list(p.execute({"x": x, "w": w}).values())[0]
        out2 = list(p.execute({"x": x}).values())[0]
        assert out1 is not out2
        out1[...] = 0  # mutating one result must not affect the next
        out3 = list(p.execute({"x": x}).values())[0]
        np.testing.assert_array_equal(out2, out3)


class TestErrorPaths:
    def test_missing_weight_on_first_call(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="missing input 'w'"):
            p.execute({"x": np.zeros((16, 32), np.float32)})
        assert not p.is_initialized  # a failed init leaves no cache behind

    def test_weights_not_required_after_init(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        first = list(p.execute({"x": x, "w": w}).values())[0]
        # Later calls may omit the weight entirely.
        second = list(p.execute({"x": x}).values())[0]
        np.testing.assert_array_equal(first, second)

    def test_shape_mismatch_message_names_tensor(self):
        p = make_partition()
        with pytest.raises(
            ExecutionError, match=r"input 'x' has shape \(16, 33\)"
        ):
            p.execute(
                {
                    "x": np.zeros((16, 33), np.float32),
                    "w": np.zeros((32, 16), np.float32),
                }
            )

    def test_dtype_mismatch_message_names_tensor(self):
        p = make_partition()
        with pytest.raises(
            ExecutionError, match="input 'w' has dtype int8"
        ):
            p.execute(
                {
                    "x": np.zeros((16, 32), np.float32),
                    "w": np.zeros((32, 16), np.int8),
                }
            )

    def test_execute_with_stats_returns_per_call_stats(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        feed = {
            "x": rng.randn(16, 32).astype(np.float32),
            "w": rng.randn(32, 16).astype(np.float32),
        }
        _, stats1 = p.execute_with_stats(feed)
        _, stats2 = p.execute_with_stats({"x": feed["x"]})
        assert stats1 is not stats2  # each call owns its stats object
        assert stats1.brgemm_calls == stats2.brgemm_calls > 0


class TestConcurrency:
    def test_multithreaded_execute_bitwise_identical(self):
        """The ISSUE stress test: concurrent first-call executions must
        initialize exactly once and agree bitwise on every output."""
        p = make_partition()
        rng = np.random.RandomState(7)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        reference = list(
            compile_graph_reference().execute({"x": x, "w": w}).values()
        )[0]
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def worker(i):
            try:
                barrier.wait()
                # All threads race the first call (weights included).
                results[i] = list(
                    p.execute({"x": x, "w": w}).values()
                )[0]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for result in results:
            np.testing.assert_array_equal(result, reference)

    def test_init_races_do_not_clobber_weight_cache(self):
        p = make_partition()
        rng = np.random.RandomState(8)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        other_w = rng.randn(32, 16).astype(np.float32)
        barrier = threading.Barrier(2)
        outs = [None, None]

        def worker(i, weights):
            barrier.wait()
            outs[i] = list(
                p.execute({"x": x, "w": weights}).values()
            )[0]

        threads = [
            threading.Thread(target=worker, args=(0, w)),
            threading.Thread(target=worker, args=(1, other_w)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one thread's weights won the init; both executions used
        # that single cached copy, so they agree bitwise with each other
        # and with every later call.  Which weights won is nondeterministic,
        # but the result must match one of the two candidates.
        assert outs[0].tobytes() == outs[1].tobytes()
        later = list(p.execute({"x": x}).values())[0]
        np.testing.assert_array_equal(later, outs[0])
        candidates = [np.maximum(x @ w, 0), np.maximum(x @ other_w, 0)]
        assert any(
            np.allclose(outs[0], c, rtol=1e-4, atol=1e-4)
            for c in candidates
        )


def compile_graph_reference():
    b = GraphBuilder("p_ref")
    x = b.input("x", DType.f32, (16, 32))
    w = b.constant("w", dtype=DType.f32, shape=(32, 16))
    b.output(b.relu(b.matmul(x, w)))
    return compile_graph(b.finish())


class TestArena:
    def test_arena_size_exposed(self):
        b = GraphBuilder("deep")
        t = b.input("x", DType.f32, (32, 64))
        for i in range(4):
            w = b.constant(f"w{i}", dtype=DType.f32, shape=(64, 64))
            t = b.relu(b.matmul(t, w))
        b.output(t)
        p = compile_graph(
            b.finish(), options=CompilerOptions.no_coarse_fusion()
        )
        assert p.arena_size > 0
        assert p.arena_size % 64 == 0


def make_threaded_partition():
    b = GraphBuilder("p")
    x = b.input("x", DType.f32, (16, 32))
    w = b.constant("w", dtype=DType.f32, shape=(32, 16))
    b.output(b.relu(b.matmul(x, w)))
    return compile_graph(b.finish(), num_threads=2)


class TestClose:
    def test_double_close_is_idempotent(self):
        p = make_threaded_partition()
        x = np.random.default_rng(0).standard_normal((16, 32)).astype(
            np.float32
        )
        w = np.random.default_rng(1).standard_normal((32, 16)).astype(
            np.float32
        )
        p.execute({"x": x, "w": w})
        assert p.has_active_pool
        p.close()
        assert not p.has_active_pool
        p.close()  # the adaptive swap path may close an arm twice
        assert not p.has_active_pool

    def test_close_before_first_execute(self):
        p = make_threaded_partition()
        p.close()
        p.close()

    def test_concurrent_close_is_safe(self):
        p = make_threaded_partition()
        x = np.random.default_rng(0).standard_normal((16, 32)).astype(
            np.float32
        )
        w = np.random.default_rng(1).standard_normal((32, 16)).astype(
            np.float32
        )
        p.execute({"x": x, "w": w})
        errors = []

        def closer():
            try:
                p.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not p.has_active_pool

    def test_execute_after_close_rebuilds_pool(self):
        p = make_threaded_partition()
        x = np.random.default_rng(0).standard_normal((16, 32)).astype(
            np.float32
        )
        w = np.random.default_rng(1).standard_normal((32, 16)).astype(
            np.float32
        )
        first = p.execute({"x": x, "w": w})
        p.close()
        again = p.execute({"x": x})
        for a, b in zip(first.values(), again.values()):
            np.testing.assert_array_equal(a, b)
        p.close()
