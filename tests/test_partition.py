"""Tests for the CompiledPartition public API."""

import numpy as np
import pytest

from repro import CompilerOptions, DType, GraphBuilder, compile_graph
from repro.errors import ExecutionError


def make_partition():
    b = GraphBuilder("p")
    x = b.input("x", DType.f32, (16, 32))
    w = b.constant("w", dtype=DType.f32, shape=(32, 16))
    b.output(b.relu(b.matmul(x, w)))
    return compile_graph(b.finish())


class TestIntrospection:
    def test_names(self):
        p = make_partition()
        assert p.input_names == ["x"]
        assert p.weight_names == ["w"]
        assert len(p.output_names) == 1

    def test_not_initialized_before_first_run(self):
        p = make_partition()
        assert not p.is_initialized

    def test_initialized_after_first_run(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        p.execute(
            {
                "x": rng.randn(16, 32).astype(np.float32),
                "w": rng.randn(32, 16).astype(np.float32),
            }
        )
        assert p.is_initialized

    def test_stats_available(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        p.execute(
            {
                "x": rng.randn(16, 32).astype(np.float32),
                "w": rng.randn(32, 16).astype(np.float32),
            }
        )
        assert p.last_stats is not None
        assert p.last_stats.brgemm_calls > 0
        assert p.init_stats is not None
        assert p.init_stats.pack_stmts > 0  # weight prepack


class TestExecuteValidation:
    def test_missing_activation(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="missing input"):
            p.execute({"w": np.zeros((32, 16), np.float32)})

    def test_wrong_shape(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="shape"):
            p.execute(
                {
                    "x": np.zeros((16, 33), np.float32),
                    "w": np.zeros((32, 16), np.float32),
                }
            )

    def test_wrong_dtype(self):
        p = make_partition()
        with pytest.raises(ExecutionError, match="dtype"):
            p.execute(
                {
                    "x": np.zeros((16, 32), np.float64),
                    "w": np.zeros((32, 16), np.float32),
                }
            )

    def test_weights_ignored_after_first_run(self):
        """Weights passed on later runs are ignored — constants are cached
        (the paper's runtime-constant contract)."""
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        first = list(p.execute({"x": x, "w": w}).values())[0]
        other_w = rng.randn(32, 16).astype(np.float32)
        second = list(p.execute({"x": x, "w": other_w}).values())[0]
        np.testing.assert_array_equal(first, second)

    def test_non_contiguous_input_accepted(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(32, 32).astype(np.float32)[::2]  # strided view
        w = rng.randn(32, 16).astype(np.float32)
        out = list(p.execute({"x": x, "w": w}).values())[0]
        np.testing.assert_allclose(
            out, np.maximum(np.ascontiguousarray(x) @ w, 0), rtol=1e-4,
            atol=1e-4,
        )

    def test_outputs_are_fresh_buffers(self):
        p = make_partition()
        rng = np.random.RandomState(0)
        x = rng.randn(16, 32).astype(np.float32)
        w = rng.randn(32, 16).astype(np.float32)
        out1 = list(p.execute({"x": x, "w": w}).values())[0]
        out2 = list(p.execute({"x": x}).values())[0]
        assert out1 is not out2
        out1[...] = 0  # mutating one result must not affect the next
        out3 = list(p.execute({"x": x}).values())[0]
        np.testing.assert_array_equal(out2, out3)


class TestArena:
    def test_arena_size_exposed(self):
        b = GraphBuilder("deep")
        t = b.input("x", DType.f32, (32, 64))
        for i in range(4):
            w = b.constant(f"w{i}", dtype=DType.f32, shape=(64, 64))
            t = b.relu(b.matmul(t, w))
        b.output(t)
        p = compile_graph(
            b.finish(), options=CompilerOptions.no_coarse_fusion()
        )
        assert p.arena_size > 0
        assert p.arena_size % 64 == 0
