"""Tests for constant-weight preprocessing (init-graph split)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.passes.constant_weight import (
    MarkRuntimeConstantsPass,
    SplitInitGraphPass,
)
from repro.graph_ir.passes.pass_base import CompileContext
from repro.graph_ir.reference import evaluate_graph


class TestMarkConstants:
    def test_propagates_through_ops(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        w = b.constant("w", dtype=DType.f32, shape=(4,))
        doubled = b.mul(w, w)  # constant
        mixed = b.add(x, doubled)  # not constant
        b.output(mixed)
        graph = b.finish()
        MarkRuntimeConstantsPass().run(graph, CompileContext())
        assert doubled.is_constant
        assert not mixed.is_constant


class TestSplit:
    def _graph(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 8))
        w = b.constant("w", dtype=DType.f32, shape=(8, 4))
        scale = b.constant("s", np.full((1,), 2.0, np.float32))
        w2 = b.mul(w, scale)  # runtime-constant preprocessing
        y = b.matmul(x, w2)
        b.output(y)
        return b.finish(), x, w, w2

    def test_init_graph_extracted(self):
        graph, x, w, w2 = self._graph()
        ctx = CompileContext()
        graph = SplitInitGraphPass().run(graph, ctx)
        assert ctx.init_graph is not None
        assert [op.kind for op in ctx.init_graph.ops] == ["mul"]
        assert [t.id for t in ctx.init_graph.outputs] == [w2.id]
        # Main graph: only the matmul, consuming the boundary constant.
        assert [op.kind for op in graph.ops] == ["matmul"]
        assert any(t.id == w2.id for t in graph.inputs)
        assert w2.is_constant

    def test_weight_input_moved_out_of_main(self):
        graph, x, w, w2 = self._graph()
        ctx = CompileContext()
        graph = SplitInitGraphPass().run(graph, ctx)
        assert all(t.id != w.id for t in graph.inputs)
        assert any(t.id == w.id for t in ctx.init_graph.inputs)

    def test_init_and_main_compose_to_original(self):
        graph, x, w, w2 = self._graph()
        rng = np.random.RandomState(0)
        xd = rng.randn(4, 8).astype(np.float32)
        wd = rng.randn(8, 4).astype(np.float32)
        reference_graph, *_ = self._graph()
        expected = list(
            evaluate_graph(reference_graph, {"x": xd, "w": wd}).values()
        )[0]
        ctx = CompileContext()
        graph = SplitInitGraphPass().run(graph, ctx)
        init_out = evaluate_graph(ctx.init_graph, {"w": wd})
        cache = {
            t.name: init_out[t.name] for t in ctx.init_graph.outputs
        }
        actual = list(
            evaluate_graph(graph, {"x": xd, **cache}).values()
        )[0]
        np.testing.assert_allclose(actual, expected, rtol=1e-6)

    def test_no_constants_no_init(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        b.output(b.relu(x))
        graph = b.finish()
        ctx = CompileContext()
        SplitInitGraphPass().run(graph, ctx)
        assert ctx.init_graph is None

    def test_constant_output_kept_in_main(self):
        """A fully constant graph output must stay executable."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        w = b.constant("w", dtype=DType.f32, shape=(4,))
        const_out = b.mul(w, w)
        b.output(b.add(x, w))
        b.output(const_out)
        graph = b.finish()
        ctx = CompileContext()
        graph = SplitInitGraphPass().run(graph, ctx)
        # The const-producing op stays in the main graph (or init is None).
        producing = [op.kind for op in graph.ops]
        assert "mul" in producing

    def test_shared_weight_stays_in_main_too(self):
        """A weight used both raw and preprocessed remains a main input."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 8))
        w = b.constant("w", dtype=DType.f32, shape=(8, 4))
        scale = b.constant("s", np.full((1,), 2.0, np.float32))
        w2 = b.mul(w, scale)
        y1 = b.matmul(x, w2)
        y2 = b.matmul(x, w)  # raw use
        b.output(b.add(y1, y2))
        graph = b.finish()
        ctx = CompileContext()
        graph = SplitInitGraphPass().run(graph, ctx)
        assert any(t.id == w.id for t in graph.inputs)
        assert any(t.id == w.id for t in ctx.init_graph.inputs)
