"""Tests for fine-grain and coarse-grain fusion passes."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.fused_op import FusedMatmul, OperandMode, StandaloneOp
from repro.graph_ir.passes.coarse_grain_fusion import CoarseGrainFusionPass
from repro.graph_ir.passes.decompose import DecomposePass
from repro.graph_ir.passes.fine_grain_fusion import FineGrainFusionPass
from repro.graph_ir.passes.layout_propagation import LayoutPropagationPass
from repro.graph_ir.passes.pass_base import CompileContext


def run_fusion(graph, decompose=True, coarse=True):
    from repro.graph_ir.passes.constant_weight import SplitInitGraphPass

    ctx = CompileContext()
    if decompose:
        graph = DecomposePass().run(graph, ctx)
    graph = LayoutPropagationPass().run(graph, ctx)
    graph = SplitInitGraphPass().run(graph, ctx)  # weight reorders -> init
    graph = FineGrainFusionPass().run(graph, ctx)
    if coarse:
        graph = CoarseGrainFusionPass().run(graph, ctx)
    return graph, ctx


class TestFineGrain:
    def test_absorbs_eltwise_chain(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        y = b.relu(b.matmul(x, w))
        y = b.tanh(y)
        b.output(y)
        graph, ctx = run_fusion(b.finish())
        plan = ctx.fusion_plan
        assert len(plan.fused_matmuls) == 1
        fused = plan.fused_matmuls[0]
        assert [op.kind for op in fused.post_ops] == ["relu", "tanh"]
        assert not plan.standalone_ops

    def test_multi_consumer_value_not_absorbed(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        y = b.matmul(x, w)
        r = b.relu(y)
        t = b.tanh(y)  # second consumer of the matmul output
        b.output(b.add(r, t))
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls[0]
        # The region can absorb the DAG (relu, tanh, add all land inside),
        # OR reject it; either way the final output must be singular.
        if fused.post_ops:
            kinds = sorted(op.kind for op in fused.post_ops)
            assert kinds == ["add", "relu", "tanh"]
        else:
            assert len(ctx.fusion_plan.standalone_ops) == 3

    def test_graph_output_mid_chain_blocks_fusion(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        y = b.matmul(x, w)
        r = b.relu(y)
        b.output(r)
        b.output(b.tanh(r))  # r escapes as a graph output
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls[0]
        # tanh cannot be in the region because r must materialize.
        assert all(op.kind != "tanh" for op in fused.post_ops)

    def test_softmax_fuses_with_group_split(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        y = b.relu(y)
        b.output(b.softmax(y))
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls[0]
        kinds = [op.kind for op in fused.post_ops]
        assert "reduce_max" in kinds and "reduce_sum" in kinds
        split = fused.reduction_split_index()
        assert kinds[:split] == ["relu"]

    def test_reduction_requires_npn_one(self):
        """If the params say NPN>1 the reduction must not be absorbed."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 512))
        w = b.input("w", DType.f32, (512, 512))
        y = b.matmul(x, w)
        b.output(b.softmax(y))
        graph = b.finish()
        ctx = CompileContext()
        graph = DecomposePass().run(graph, ctx)
        graph = LayoutPropagationPass().run(graph, ctx)
        matmul = next(op for op in graph.ops if op.kind == "matmul")
        params = ctx.matmul_params[matmul.id]
        if params.npn == 1:
            pytest.skip("heuristic already picked NPN=1")
        graph = FineGrainFusionPass().run(graph, ctx)
        fused = ctx.fusion_plan.fused_matmuls[0]
        assert not fused.reduction_ops

    def test_non_matmul_graph_all_standalone(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64,))
        b.output(b.tanh(b.relu(x)))
        graph, ctx = run_fusion(b.finish())
        assert len(ctx.fusion_plan.standalone_ops) == 2
        assert not ctx.fusion_plan.fused_matmuls

    def test_side_chain_scheduled_before_consumer(self):
        """Independent producers of post-op operands come first in the plan
        so the post-op can fuse (the int8 activation-compensation case)."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        z = b.input("z", DType.f32, (64, 64))
        side = b.exp(z)  # independent side computation
        y = b.matmul(x, w)
        b.output(b.add(y, side))
        graph, ctx = run_fusion(b.finish())
        plan = ctx.fusion_plan
        kinds = [
            "fused" if isinstance(i, FusedMatmul) else i.op.kind
            for i in plan.items
        ]
        assert kinds.index("exp") < kinds.index("fused")
        fused = plan.fused_matmuls[0]
        assert [op.kind for op in fused.post_ops] == ["add"]


class TestCoarseGrain:
    def _mlp(self, batch, dims):
        b = GraphBuilder()
        t = b.input("x", DType.f32, (batch, dims[0]))
        for i in range(len(dims) - 1):
            w = b.constant(
                f"w{i}", dtype=DType.f32, shape=(dims[i], dims[i + 1])
            )
            t = b.relu(b.matmul(t, w))
        b.output(t)
        return b.finish()

    def test_chain_gets_merge_tags(self):
        graph, ctx = run_fusion(self._mlp(128, [128, 128, 128]))
        fused = ctx.fusion_plan.fused_matmuls
        tags = {f.merge_tag for f in fused}
        assert len(fused) == 2
        assert tags != {None}
        assert fused[0].merge_tag == fused[1].merge_tag

    def test_batched_mha_merges(self):
        b = GraphBuilder()
        q = b.input("q", DType.f32, (4, 2, 32, 16))
        k = b.input("k", DType.f32, (4, 2, 32, 16))
        v = b.input("v", DType.f32, (4, 2, 32, 16))
        p = b.softmax(b.matmul(q, k, transpose_b=True))
        b.output(b.matmul(p, v))
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls
        assert len(fused) == 2
        assert fused[0].merge_tag is not None
        assert fused[0].merge_tag == fused[1].merge_tag

    def test_disabled_pass_sets_no_tags(self):
        graph, ctx = run_fusion(
            self._mlp(128, [128, 128, 128]), coarse=False
        )
        assert all(
            f.merge_tag is None for f in ctx.fusion_plan.fused_matmuls
        )

    def test_standalone_op_breaks_group(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (128, 128))
        w0 = b.constant("w0", dtype=DType.f32, shape=(128, 128))
        w1 = b.constant("w1", dtype=DType.f32, shape=(128, 128))
        t = b.matmul(x, w0)
        t = b.transpose(t, (1, 0))  # data movement: standalone
        b.output(b.matmul(t, w1))
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls
        assert all(f.merge_tag is None for f in fused)

    def test_mismatched_batch_dims_not_merged(self):
        b = GraphBuilder()
        q = b.input("q", DType.f32, (4, 32, 16))
        k = b.input("k", DType.f32, (4, 32, 16))
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        b.output(b.matmul(q, k, transpose_b=True))
        b.output(b.matmul(x, w))
        graph, ctx = run_fusion(b.finish())
        fused = ctx.fusion_plan.fused_matmuls
        if len(fused) == 2:
            assert (
                fused[0].merge_tag is None or
                fused[0].merge_tag != fused[1].merge_tag
            )
