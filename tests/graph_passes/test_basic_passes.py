"""Tests for decompose, constant folding, CSE and DCE."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.passes.constant_fold import ConstantFoldPass
from repro.graph_ir.passes.cse import CsePass
from repro.graph_ir.passes.dce import DcePass
from repro.graph_ir.passes.decompose import DecomposePass
from repro.graph_ir.passes.pass_base import CompileContext
from repro.graph_ir.reference import evaluate_graph


def run_pass(p, graph):
    ctx = CompileContext()
    graph = p.run(graph, ctx)
    graph.validate()
    return graph, ctx


class TestDecompose:
    def _check_equivalent(self, make_graph, inputs, rtol=1e-5, atol=1e-6):
        """Decomposition must preserve reference semantics."""
        graph1 = make_graph()
        expected = evaluate_graph(graph1, inputs)
        graph2 = make_graph()
        graph2, _ = run_pass(DecomposePass(), graph2)
        actual = evaluate_graph(graph2, inputs)
        # Rewrites rename output tensors; compare positionally.
        for exp, act in zip(expected.values(), actual.values()):
            np.testing.assert_allclose(act, exp, rtol=rtol, atol=atol)

    def test_softmax(self):
        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (4, 16))
            b.output(b.softmax(x))
            return b.finish()

        self._check_equivalent(
            make, {"x": np.random.randn(4, 16).astype(np.float32)}
        )

    def test_softmax_ops_are_basic(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 16))
        b.output(b.softmax(x))
        graph, _ = run_pass(DecomposePass(), b.finish())
        kinds = sorted(op.kind for op in graph.ops)
        assert kinds == ["div", "exp", "reduce_max", "reduce_sum", "sub"]

    def test_gelu_erf(self):
        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (32,))
            b.output(b.gelu(x))
            return b.finish()

        self._check_equivalent(
            make, {"x": np.linspace(-4, 4, 32).astype(np.float32)}
        )

    def test_gelu_tanh(self):
        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (32,))
            b.output(b.gelu(x, approximate="tanh"))
            return b.finish()

        self._check_equivalent(
            make, {"x": np.linspace(-4, 4, 32).astype(np.float32)}
        )

    def test_silu(self):
        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (16,))
            b.output(b.silu(x))
            return b.finish()

        self._check_equivalent(
            make, {"x": np.random.randn(16).astype(np.float32)}
        )

    def test_layernorm(self):
        np.random.seed(0)
        gamma = np.random.rand(32).astype(np.float32) + 0.5
        beta = np.random.randn(32).astype(np.float32)

        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (8, 32))
            g = b.constant("g", gamma)
            bb = b.constant("bb", beta)
            b.output(b.layernorm(x, g, bb))
            return b.finish()

        self._check_equivalent(
            make,
            {"x": np.random.randn(8, 32).astype(np.float32)},
            rtol=1e-4,
            atol=1e-5,
        )

    def test_batchnorm(self):
        np.random.seed(1)
        g = np.random.rand(16).astype(np.float32) + 0.5
        beta = np.random.randn(16).astype(np.float32)
        mean = np.random.randn(16).astype(np.float32)
        var = np.random.rand(16).astype(np.float32) + 0.1

        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (8, 16))
            b.output(
                b.batchnorm(
                    x,
                    b.constant("g", g),
                    b.constant("be", beta),
                    b.constant("m", mean),
                    b.constant("v", var),
                )
            )
            return b.finish()

        self._check_equivalent(
            make,
            {"x": np.random.randn(8, 16).astype(np.float32)},
            rtol=1e-4,
            atol=1e-5,
        )

    def test_quantize_dequantize_exact(self):
        def make():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (64,))
            q = b.quantize(x, scale=0.05, zero_point=3, dtype=DType.u8)
            b.output(b.dequantize(q, scale=0.05, zero_point=3))
            return b.finish()

        graph1 = make()
        inputs = {"x": (np.random.rand(64) * 10 - 5).astype(np.float32)}
        expected = evaluate_graph(graph1, inputs)
        graph2, _ = run_pass(DecomposePass(), make())
        actual = evaluate_graph(graph2, inputs)
        for exp, act in zip(expected.values(), actual.values()):
            np.testing.assert_array_equal(act, exp)

    def test_bias_add_becomes_add(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 8))
        bias = b.input("bias", DType.f32, (8,))
        b.output(b.bias_add(x, bias))
        graph, _ = run_pass(DecomposePass(), b.finish())
        assert [op.kind for op in graph.ops] == ["add"]


class TestConstantFold:
    def test_folds_constant_chain(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        c1 = b.constant("c1", np.ones(4, dtype=np.float32))
        c2 = b.constant("c2", np.full(4, 2.0, dtype=np.float32))
        s = b.add(c1, c2)  # foldable
        b.output(b.add(x, s))
        graph, ctx = run_pass(ConstantFoldPass(), b.finish())
        assert len(graph.ops) == 1
        assert any("folded" in m for m in ctx.log)
        out = evaluate_graph(graph, {"x": np.zeros(4, dtype=np.float32)})
        np.testing.assert_array_equal(list(out.values())[0], np.full(4, 3.0))

    def test_does_not_fold_runtime_constant(self):
        """Constants without bound data (runtime weights) cannot fold."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        w = b.constant("w", dtype=DType.f32, shape=(4,))  # no data
        s = b.add(w, w)
        b.output(b.add(x, s))
        graph, _ = run_pass(ConstantFoldPass(), b.finish())
        assert len(graph.ops) == 2


class TestCse:
    def test_merges_identical_ops(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        r1 = b.relu(x)
        r2 = b.relu(x)
        b.output(b.add(r1, r2))
        graph, _ = run_pass(CsePass(), b.finish())
        assert sum(1 for op in graph.ops if op.kind == "relu") == 1

    def test_respects_attrs(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 4))
        s1 = b.reduce_sum(x, axis=0)
        s2 = b.reduce_sum(x, axis=1)
        b.output(b.add(s1, b.transpose(s2, (1, 0))))
        graph, _ = run_pass(CsePass(), b.finish())
        assert sum(1 for op in graph.ops if op.kind == "reduce_sum") == 2


class TestDce:
    def test_removes_dead_ops(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        live = b.relu(x)
        b.exp(x)  # dead
        b.output(live)
        graph, _ = run_pass(DcePass(), b.finish())
        assert [op.kind for op in graph.ops] == ["relu"]

    def test_removes_transitively_dead(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        live = b.relu(x)
        d1 = b.exp(x)
        b.tanh(d1)  # dead chain
        b.output(live)
        graph, _ = run_pass(DcePass(), b.finish())
        assert [op.kind for op in graph.ops] == ["relu"]

    def test_drops_unused_constants(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        c = b.constant("c", np.ones(4, dtype=np.float32))
        b.exp(c)  # dead use of constant
        b.output(b.relu(x))
        graph, _ = run_pass(DcePass(), b.finish())
        assert not graph.constants
        assert all(t.name != "c" for t in graph.inputs)
