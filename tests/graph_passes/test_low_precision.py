"""Tests for the low-precision conversion pass (Figure 5 rewrite)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.passes.dce import DcePass
from repro.graph_ir.passes.low_precision import LowPrecisionPass
from repro.graph_ir.passes.pass_base import CompileContext
from repro.graph_ir.reference import evaluate_graph


def run_lp(graph):
    ctx = CompileContext()
    graph = LowPrecisionPass().run(graph, ctx)
    graph = DcePass().run(graph, ctx)
    graph.validate()
    return graph, ctx


def quantized_matmul_graph(a_zp=5, transpose_b=False, b_shape=None):
    b = GraphBuilder()
    xq = b.input("x", DType.u8, (16, 32))
    wq = b.input("w", DType.s8, b_shape or ((24, 32) if transpose_b else (32, 24)))
    x = b.dequantize(xq, scale=0.1, zero_point=a_zp)
    w = b.dequantize(wq, scale=0.05)
    y = b.matmul(x, w, transpose_b=transpose_b)
    b.output(y)
    return b.finish()


class TestRewrite:
    def test_matmul_becomes_int8(self):
        graph, ctx = run_lp(quantized_matmul_graph())
        matmul = next(op for op in graph.ops if op.kind == "matmul")
        assert matmul.inputs[0].dtype == DType.u8
        assert matmul.inputs[1].dtype == DType.s8
        assert matmul.outputs[0].dtype == DType.s32
        assert any("rewrote" in m for m in ctx.log)

    def test_compensation_present_with_zero_point(self):
        graph, _ = run_lp(quantized_matmul_graph(a_zp=5))
        kinds = [op.kind for op in graph.ops]
        assert "reduce_sum" in kinds  # colsum compensation
        assert "sub" in kinds

    def test_no_compensation_when_symmetric(self):
        graph, _ = run_lp(quantized_matmul_graph(a_zp=0))
        kinds = [op.kind for op in graph.ops]
        assert "reduce_sum" not in kinds

    def test_b_zero_point_skips_rewrite(self):
        b = GraphBuilder()
        xq = b.input("x", DType.u8, (16, 32))
        wq = b.input("w", DType.s8, (32, 24))
        x = b.dequantize(xq, scale=0.1)
        w = b.dequantize(wq, scale=0.05, zero_point=3)  # asymmetric weight
        b.output(b.matmul(x, w))
        graph, ctx = run_lp(b.finish())
        matmul = next(op for op in graph.ops if op.kind == "matmul")
        assert matmul.inputs[0].dtype == DType.f32  # untouched
        assert any("skipped" in m for m in ctx.log)

    def test_plain_fp32_matmul_untouched(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8, 8))
        w = b.input("w", DType.f32, (8, 8))
        b.output(b.matmul(x, w))
        graph, _ = run_lp(b.finish())
        assert [op.kind for op in graph.ops] == ["matmul"]

    def _exactness(self, a_zp, transpose_b=False):
        rng = np.random.RandomState(a_zp + 17)
        x = rng.randint(0, 256, (16, 32)).astype(np.uint8)
        w_shape = (24, 32) if transpose_b else (32, 24)
        w = rng.randint(-128, 128, w_shape).astype(np.int8)
        graph = quantized_matmul_graph(a_zp=a_zp, transpose_b=transpose_b)
        rewritten, _ = run_lp(
            quantized_matmul_graph(a_zp=a_zp, transpose_b=transpose_b)
        )
        actual = list(
            evaluate_graph(rewritten, {"x": x, "w": w}).values()
        )[0]
        # Exact oracle in the rewrite's own arithmetic.
        wt = w.T if transpose_b else w
        acc = (x.astype(np.int32) @ wt.astype(np.int32)).astype(np.float32)
        comp = wt.astype(np.int32).sum(axis=0).astype(np.float32)
        expected = (acc - np.float32(a_zp) * comp) * np.float32(0.1 * 0.05)
        np.testing.assert_allclose(actual, expected, rtol=1e-6, atol=1e-3)

    def test_exact_with_zero_point(self):
        self._exactness(a_zp=7)

    def test_exact_symmetric(self):
        self._exactness(a_zp=0)

    def test_exact_transpose_b(self):
        self._exactness(a_zp=3, transpose_b=True)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=32),
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_rewrite_matches_dequant_oracle(self, a_zp, a_s, b_s):
        """Property: the rewrite equals dequantized fp32 matmul within
        fp32 rounding of the accumulator."""
        rng = np.random.RandomState(a_zp)
        x = rng.randint(0, 256, (8, 16)).astype(np.uint8)
        w = rng.randint(-128, 128, (16, 8)).astype(np.int8)

        b = GraphBuilder()
        xq = b.input("x", DType.u8, (8, 16))
        wq = b.input("w", DType.s8, (16, 8))
        xf = b.dequantize(xq, scale=a_s, zero_point=a_zp)
        wf = b.dequantize(wq, scale=b_s)
        b.output(b.matmul(xf, wf))
        rewritten, _ = run_lp(b.finish())
        actual = list(
            evaluate_graph(rewritten, {"x": x, "w": w}).values()
        )[0]
        exact = (
            ((x.astype(np.int64) - a_zp) @ w.astype(np.int64)).astype(
                np.float64
            )
            * a_s
            * b_s
        )
        np.testing.assert_allclose(actual, exact, rtol=1e-3, atol=1e-2)


class TestBatchedRewrite:
    def test_batched_activation_matmul(self):
        """MHA-style: both operands are quantized activations."""
        b = GraphBuilder()
        qq = b.input("q", DType.s8, (2, 3, 8, 16))
        kq = b.input("k", DType.s8, (2, 3, 8, 16))
        q = b.dequantize(qq, scale=0.1)
        k = b.dequantize(kq, scale=0.1)
        b.output(b.matmul(q, k, transpose_b=True))
        graph, _ = run_lp(b.finish())
        matmul = next(op for op in graph.ops if op.kind == "matmul")
        assert matmul.inputs[0].dtype == DType.s8
        rng = np.random.RandomState(0)
        qd = rng.randint(-128, 128, (2, 3, 8, 16)).astype(np.int8)
        kd = rng.randint(-128, 128, (2, 3, 8, 16)).astype(np.int8)
        out = list(evaluate_graph(graph, {"q": qd, "k": kd}).values())[0]
        expected = (
            qd.astype(np.int64) @ kd.astype(np.int64).transpose(0, 1, 3, 2)
        ).astype(np.float32) * np.float32(0.01)
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-2)
