"""Tests for the reshape-sinking pass."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.passes.pass_base import CompileContext
from repro.graph_ir.passes.reshape_sink import ReshapeSinkPass
from repro.graph_ir.reference import evaluate_graph


def run(graph):
    ctx = CompileContext()
    graph = ReshapeSinkPass().run(graph, ctx)
    graph.validate()
    return graph, ctx


class TestReshapeSink:
    def test_unary_sinks(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        r = b.reshape(x, (2, 2, 6))
        b.output(b.relu(r))
        graph, ctx = run(b.finish())
        kinds = [op.kind for op in graph.topological_order()]
        assert kinds == ["relu", "reshape"]
        assert ctx.log

    def test_binary_with_channel_vector_sinks(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        bias = b.input("bias", DType.f32, (6,))
        r = b.reshape(x, (2, 2, 6))
        b.output(b.add(r, bias))
        graph, _ = run(b.finish())
        kinds = [op.kind for op in graph.topological_order()]
        assert kinds == ["add", "reshape"]

    def test_binary_with_scalar_sinks(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        r = b.reshape(x, (24,))
        b.output(b.mul(r, b.scalar("s", 2.0)))
        graph, _ = run(b.finish())
        kinds = [op.kind for op in graph.topological_order()]
        assert kinds == ["mul", "reshape"]

    def test_last_dim_change_blocks_vector_operand(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        bias = b.input("bias", DType.f32, (24,))
        r = b.reshape(x, (24,))  # last dim changes 6 -> 24
        b.output(b.add(r, bias))
        graph, _ = run(b.finish())
        kinds = [op.kind for op in graph.topological_order()]
        assert kinds == ["reshape", "add"]  # unchanged

    def test_multi_consumer_reshape_not_sunk(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        r = b.reshape(x, (2, 2, 6))
        b.output(b.relu(r))
        b.output(b.tanh(r))
        graph, _ = run(b.finish())
        first = graph.topological_order()[0]
        assert first.kind == "reshape"

    def test_chain_sinks_fully(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 6))
        bias = b.input("bias", DType.f32, (6,))
        r = b.reshape(x, (2, 2, 6))
        y = b.relu(b.add(r, bias))
        b.output(y)
        graph, _ = run(b.finish())
        kinds = [op.kind for op in graph.topological_order()]
        assert kinds == ["add", "relu", "reshape"]

    def test_semantics_preserved(self):
        def build():
            b = GraphBuilder()
            x = b.input("x", DType.f32, (4, 6))
            bias = b.input("bias", DType.f32, (6,))
            r = b.reshape(x, (2, 2, 6))
            b.output(b.relu(b.add(r, bias)))
            return b.finish()

        rng = np.random.RandomState(0)
        inputs = {
            "x": rng.randn(4, 6).astype(np.float32),
            "bias": rng.randn(6).astype(np.float32),
        }
        expected = list(evaluate_graph(build(), inputs).values())[0]
        graph, _ = run(build())
        actual = list(evaluate_graph(graph, inputs).values())[0]
        np.testing.assert_array_equal(actual, expected)
