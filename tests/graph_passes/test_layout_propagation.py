"""Tests for layout propagation and parameter selection."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.fused_op import OperandMode
from repro.graph_ir.passes.layout_propagation import (
    LayoutPropagationPass,
    matmul_geometry,
    weight_blocked_layout,
)
from repro.graph_ir.passes.pass_base import CompileContext


def run_layout(graph):
    ctx = CompileContext()
    graph = LayoutPropagationPass().run(graph, ctx)
    graph.validate()
    return graph, ctx


class TestGeometry:
    def test_matmul_geometry(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 3, 16, 32))
        w = b.input("w", DType.f32, (32, 24))
        b.output(b.matmul(x, w))
        graph = b.finish()
        assert matmul_geometry(graph.ops[0]) == (6, 16, 24, 32)

    def test_transpose_a_geometry(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (32, 16))
        w = b.input("w", DType.f32, (32, 24))
        b.output(b.matmul(x, w, transpose_a=True))
        graph = b.finish()
        assert matmul_geometry(graph.ops[0]) == (1, 16, 24, 32)


class TestWeightLayout:
    def test_plain_orientation(self):
        layout = weight_blocked_layout(16, 32, transposed=False)
        # [K/KB, N/NB, NB, KB]
        assert layout.physical_shape((64, 64)) == (4, 2, 32, 16)

    def test_transposed_orientation(self):
        layout = weight_blocked_layout(16, 32, transposed=True)
        # Logical [n, k] -> same physical [K/KB, N/NB, NB, KB].
        assert layout.physical_shape((64, 64)) == (4, 2, 32, 16)


class TestWeightPrepack:
    def test_constant_weight_gets_reorder(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        b.output(b.matmul(x, w))
        graph, ctx = run_layout(b.finish())
        reorders = [op for op in graph.ops if op.kind == "reorder"]
        assert len(reorders) == 1
        assert reorders[0].inputs[0].id == w.id
        matmul = next(op for op in graph.ops if op.kind == "matmul")
        assert matmul.inputs[1].id == reorders[0].outputs[0].id
        assert ctx.b_modes[matmul.id] is OperandMode.BLOCKED

    def test_activation_b_not_prepacked(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        y = b.input("y", DType.f32, (64, 64))
        b.output(b.matmul(x, y))
        graph, ctx = run_layout(b.finish())
        assert not any(op.kind == "reorder" for op in graph.ops)
        matmul = graph.ops[0]
        assert ctx.b_modes[matmul.id] is OperandMode.PACK_FULL

    def test_reorder_pads_to_template_grid(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 479))
        w = b.constant("w", dtype=DType.f32, shape=(479, 100))
        b.output(b.matmul(x, w))
        graph, ctx = run_layout(b.finish())
        reorder = next(op for op in graph.ops if op.kind == "reorder")
        params = list(ctx.matmul_params.values())[0]
        assert reorder.outputs[0].shape == (params.k, params.n)
        assert reorder.attr("pad_to") == (params.k, params.n)


class TestChaining:
    def _chain(self, m, n1, n2):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (m, n1))
        w0 = b.constant("w0", dtype=DType.f32, shape=(n1, n1))
        w1 = b.constant("w1", dtype=DType.f32, shape=(n1, n2))
        t = b.relu(b.matmul(x, w0))
        b.output(b.relu(b.matmul(t, w1)))
        return b.finish()

    def test_params_selected_per_matmul(self):
        graph, ctx = run_layout(self._chain(256, 512, 256))
        assert len(ctx.matmul_params) == 2

    def test_outer_split_aligned_for_merging(self):
        """Neighbor matmuls should share the MPN split (the paper's
        alignment-with-neighbors rule)."""
        graph, ctx = run_layout(self._chain(256, 512, 256))
        params = list(ctx.matmul_params.values())
        assert params[0].mpn == params[1].mpn
        assert params[0].m == params[1].m

    def test_reduction_lookahead_pins_npn(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (128, 64))
        w = b.input("w", DType.f32, (64, 128))
        y = b.matmul(x, w)
        b.output(b.softmax(y))
        graph = b.finish()
        # Decompose softmax first so the lookahead sees basic reductions.
        from repro.graph_ir.passes.decompose import DecomposePass

        ctx = CompileContext()
        graph = DecomposePass().run(graph, ctx)
        graph = LayoutPropagationPass().run(graph, ctx)
        params = list(ctx.matmul_params.values())[0]
        assert params.npn == 1

    def test_pack_slice_only_when_aligned(self):
        # Aligned: m, k multiples of the blocks and no padding.
        graph, ctx = run_layout(self._chain(256, 512, 256))
        modes = list(ctx.a_modes.values())
        assert modes[0] in (OperandMode.PACK_SLICE, OperandMode.PACK_FULL)
        # Unaligned k=479 must NOT slice-pack.
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 479))
        w = b.constant("w", dtype=DType.f32, shape=(479, 64))
        b.output(b.matmul(x, w))
        graph, ctx = run_layout(b.finish())
        assert list(ctx.a_modes.values())[0] is OperandMode.PACK_FULL
