"""Tests for MatmulParams: the Figure 2 derived-quantity identities."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HeuristicError
from repro.templates.params import MatmulParams, TemplateKind, pad_to_grid


def make_params(**kw):
    defaults = dict(
        m=256, n=512, k=256, mb=32, nb=64, kb=64, bs=2, mpn=4, npn=8
    )
    defaults.update(kw)
    return MatmulParams(**defaults)


class TestDerivedQuantities:
    def test_figure2_identities(self):
        """The identities of Figure 2's parameter table."""
        p = make_params()
        # M = MB * MSN * MPN = MB * MPSN
        assert p.m == p.mb * p.msn * p.mpn
        assert p.m == p.mb * p.mpsn
        assert p.n == p.nb * p.nsn * p.npn
        assert p.n == p.nb * p.npsn
        assert p.k == p.kb * p.ksn * p.kpn
        assert p.k == p.kb * p.kpsn
        # Tensor slice sizes per single-core kernel.
        assert p.msbn == p.mb * p.msn
        assert p.nsbn == p.nb * p.nsn
        assert p.ksbn == p.kb * p.ksn

    def test_microkernel_invocations(self):
        p = make_params()
        assert p.microkernel_invocations == p.msn * p.nsn * (p.ksn // p.bs)

    def test_working_set_bytes(self):
        p = make_params(mb=32, nb=64, kb=64, bs=2)
        expected = 2 * (32 * 64 + 64 * 64) * 4 + 32 * 64 * 4
        assert p.microkernel_working_set_bytes(4, 4) == expected

    def test_num_cores_used(self):
        p = make_params(mpn=4, npn=8)
        assert p.num_cores_used == 32

    @given(
        st.sampled_from([16, 32, 64]),
        st.sampled_from([16, 32, 64]),
        st.sampled_from([16, 32, 64]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
        st.integers(min_value=1, max_value=4),
    )
    def test_identities_hold_for_any_valid_params(
        self, mb, nb, kb, mpn, npn, scale
    ):
        m = mb * mpn * scale
        n = nb * npn * scale
        k = kb * 2 * scale
        p = MatmulParams(
            m=m, n=n, k=k, mb=mb, nb=nb, kb=kb, bs=1, mpn=mpn, npn=npn
        )
        assert p.mb * p.msn * p.mpn == p.m
        assert p.nb * p.nsn * p.npn == p.n
        assert p.kb * p.ksn == p.k


class TestValidation:
    def test_m_not_divisible(self):
        with pytest.raises(HeuristicError, match="M="):
            make_params(m=100)

    def test_n_not_divisible(self):
        with pytest.raises(HeuristicError, match="N="):
            make_params(n=100)

    def test_k_not_divisible(self):
        with pytest.raises(HeuristicError, match="K="):
            make_params(k=100)

    def test_bs_must_divide_ksn(self):
        with pytest.raises(HeuristicError, match="KSN"):
            make_params(bs=3)

    def test_positive_params(self):
        with pytest.raises(HeuristicError, match="positive"):
            make_params(mb=0)

    def test_bad_loop_order(self):
        with pytest.raises(HeuristicError, match="loop_order"):
            make_params(loop_order=("msi", "msi", "nsi"))

    def test_describe(self):
        text = make_params().describe()
        assert "MB32" in text and "NPN8" in text


class TestPadToGrid:
    def test_exact(self):
        assert pad_to_grid(256, 32, 4) == 256

    def test_rounds_up(self):
        assert pad_to_grid(479, 32) == 480
        assert pad_to_grid(13, 16) == 16
        assert pad_to_grid(1, 16) == 16

    def test_with_parallel(self):
        assert pad_to_grid(100, 16, 4) == 128
