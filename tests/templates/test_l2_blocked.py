"""Tests for the L2_BLOCKED template variant (training-size activations)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import HeuristicError
from repro.graph_ir import GraphBuilder
from repro.graph_ir.fused_op import FusedMatmul, OperandMode
from repro.microkernel.machine import XEON_8358
from repro.runtime import Interpreter
from repro.templates.heuristics import select_matmul_params
from repro.templates.matmul import lower_fused_matmul
from repro.templates.params import MatmulParams, TemplateKind
from repro.tensor_ir import TirModule
from repro.tensor_ir.stmt import For
from repro.tensor_ir.visitor import walk


class TestParams:
    def test_l2_chunk_must_divide_msn(self):
        with pytest.raises(HeuristicError, match="l2_chunk"):
            MatmulParams(
                m=256, n=64, k=64, mb=16, nb=16, kb=16, bs=1,
                mpn=1, npn=1, kind=TemplateKind.L2_BLOCKED, l2_chunk=3,
            )

    def test_l2_chunk_rejected_for_other_kinds(self):
        with pytest.raises(HeuristicError, match="only meaningful"):
            MatmulParams(
                m=256, n=64, k=64, mb=16, nb=16, kb=16, bs=1,
                mpn=1, npn=1, l2_chunk=4,
            )


class TestHeuristicTrigger:
    def test_training_size_triggers_l2_blocking(self):
        """A huge per-core A slice (several MiB) selects L2_BLOCKED."""
        params = select_matmul_params(
            8192, 128, 4096, DType.f32, XEON_8358
        )
        a_slice = params.msbn * params.ksbn * 4
        if a_slice > XEON_8358.cache("L2").size_bytes:
            assert params.kind is TemplateKind.L2_BLOCKED
            assert params.l2_chunk > 0
            assert params.msn % params.l2_chunk == 0

    def test_inference_size_stays_cache_resident(self):
        params = select_matmul_params(256, 512, 256, DType.f32, XEON_8358)
        assert params.kind in (
            TemplateKind.CACHE_RESIDENT, TemplateKind.K_SLICED
        )


class TestLowering:
    def _run(self, params, m, k, n):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (m, k))
        w = b.input("w", DType.f32, (k, n))
        y = b.matmul(x, w)
        z = b.relu(y)
        b.output(z)
        graph = b.finish()
        fused = FusedMatmul(
            name="l2",
            matmul=graph.ops[0],
            post_ops=[graph.ops[1]],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        func = lower_fused_matmul(fused, XEON_8358)
        module = TirModule(entry=func.name)
        module.add(func)
        X = np.random.randn(m, k).astype(np.float32)
        W = np.random.randn(k, n).astype(np.float32)
        out = np.zeros((m, n), np.float32)
        call = {}
        for tensor, param in zip(
            fused.external_inputs() + [fused.output], func.params
        ):
            call[param.name] = {x.id: X, w.id: W, z.id: out}[tensor.id]
        Interpreter(module).run(call)
        return out, X, W, func

    def test_l2_blocked_correctness(self):
        params = MatmulParams(
            m=128, n=64, k=64, mb=16, nb=16, kb=16, bs=2,
            mpn=2, npn=2, kind=TemplateKind.L2_BLOCKED, l2_chunk=2,
        )
        out, X, W, func = self._run(params, 128, 64, 64)
        np.testing.assert_allclose(
            out, np.maximum(X @ W, 0), rtol=1e-4, atol=1e-4
        )

    def test_l2_blocked_has_chunk_loop(self):
        params = MatmulParams(
            m=128, n=64, k=64, mb=16, nb=16, kb=16, bs=2,
            mpn=2, npn=2, kind=TemplateKind.L2_BLOCKED, l2_chunk=2,
        )
        _, _, _, func = self._run(params, 128, 64, 64)
        loop_vars = [
            s.var for s in walk(func.body) if isinstance(s, For)
        ]
        assert any(v.startswith("mci") for v in loop_vars)
        assert any(v.startswith("msj") for v in loop_vars)

    def test_l2_blocked_with_reduction_group(self):
        """Softmax fusion also works under the L2-blocked nest."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (128, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        m = b.reduce_max(y, axis=-1)
        e = b.exp(b.sub(y, m))
        s = b.reduce_sum(e, axis=-1)
        out = b.div(e, s)
        b.output(out)
        graph = b.finish()
        params = MatmulParams(
            m=128, n=64, k=64, mb=16, nb=16, kb=16, bs=2,
            mpn=2, npn=1, kind=TemplateKind.L2_BLOCKED, l2_chunk=2,
        )
        fused = FusedMatmul(
            name="l2sm",
            matmul=graph.ops[0],
            post_ops=graph.ops[1:],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        func = lower_fused_matmul(fused, XEON_8358)
        module = TirModule(entry=func.name)
        module.add(func)
        X = np.random.randn(128, 64).astype(np.float32)
        W = np.random.randn(64, 64).astype(np.float32) * 0.1
        res = np.zeros((128, 64), np.float32)
        call = {}
        for tensor, param in zip(
            fused.external_inputs() + [fused.output], func.params
        ):
            call[param.name] = {x.id: X, w.id: W, out.id: res}[tensor.id]
        Interpreter(module).run(call)
        logits = X @ W
        expected = np.exp(logits - logits.max(-1, keepdims=True))
        expected /= expected.sum(-1, keepdims=True)
        np.testing.assert_allclose(res, expected, rtol=1e-4, atol=1e-6)
