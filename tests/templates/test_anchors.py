"""Tests for the anchor cost table (paper Figure 3)."""

import pytest

from repro.errors import LoweringError
from repro.templates.anchors import (
    Anchor,
    POST_ANCHORS,
    PRE_ANCHORS,
    anchor_access_times,
    anchor_total_accesses,
    anchor_working_set,
    cost_table,
)
from repro.templates.params import MatmulParams


@pytest.fixture
def params():
    return MatmulParams(
        m=256, n=512, k=256, mb=32, nb=64, kb=64, bs=2, mpn=4, npn=2
    )


class TestWorkingSets:
    def test_pre_anchor_1_a(self, params):
        p = params
        assert anchor_working_set(Anchor.PRE_1, p, "a") == (
            p.msn * p.ksn * p.mb * p.kb
        )

    def test_pre_anchor_1_b_covers_npsn(self, params):
        p = params
        assert anchor_working_set(Anchor.PRE_1, p, "b") == (
            p.ksn * p.npsn * p.nb * p.kb
        )

    def test_pre_anchor_4_vs_5_for_a_same(self, params):
        """Fig 3: A's slice is the same at anchors #4 and #5 ([BS, MB, KB])."""
        a4 = anchor_working_set(Anchor.PRE_4, params, "a")
        a5 = anchor_working_set(Anchor.PRE_5, params, "a")
        assert a4 == a5 == params.bs * params.mb * params.kb

    def test_pre_anchor_5_shrinks_b(self, params):
        """Fig 3: the nsi loop reduces B's slice from [BS,NSN,NB,KB] to
        [BS,NB,KB]."""
        b4 = anchor_working_set(Anchor.PRE_4, params, "b")
        b5 = anchor_working_set(Anchor.PRE_5, params, "b")
        assert b4 == params.bs * params.nsn * params.nb * params.kb
        assert b5 == params.bs * params.nb * params.kb
        assert b5 < b4

    def test_post_anchor_working_sets_grow_outward(self, params):
        """POST_1 has the smallest C slice; POST_3 spans full N."""
        c1 = anchor_working_set(Anchor.POST_1, params, "c")
        c2 = anchor_working_set(Anchor.POST_2, params, "c")
        c3 = anchor_working_set(Anchor.POST_3, params, "c")
        assert c1 <= c2 <= c3
        assert c1 == params.mb * params.nsbn
        assert c3 == params.msbn * params.n

    def test_wrong_operand_rejected(self, params):
        with pytest.raises(LoweringError):
            anchor_working_set(Anchor.PRE_1, params, "c")
        with pytest.raises(LoweringError):
            anchor_working_set(Anchor.POST_1, params, "a")


class TestAccessTimes:
    def test_access_times_match_figure3(self, params):
        p = params
        assert anchor_access_times(Anchor.PRE_1, p) == 1
        assert anchor_access_times(Anchor.PRE_2, p) == 1
        assert anchor_access_times(Anchor.PRE_3, p) == p.msn
        assert anchor_access_times(Anchor.PRE_4, p) == p.msn * (p.ksn // p.bs)
        assert anchor_access_times(Anchor.PRE_5, p) == (
            p.msn * p.nsn * (p.ksn // p.bs)
        )
        assert anchor_access_times(Anchor.POST_1, p) == p.msn
        assert anchor_access_times(Anchor.POST_2, p) == 1
        assert anchor_access_times(Anchor.POST_3, p) == 1


class TestTotalAccesses:
    def test_a_total_same_anchors_1_to_4(self, params):
        """A's total accesses are MSN*MB*KSN*KB at anchors #1-#4."""
        p = params
        expected = p.msn * p.mb * p.ksn * p.kb
        for anchor in (Anchor.PRE_1, Anchor.PRE_2, Anchor.PRE_3, Anchor.PRE_4):
            assert anchor_total_accesses(anchor, p, "a") == expected

    def test_a_total_anchor5_redundant_by_nsn(self, params):
        """At anchor #5, A is redundantly accessed once per nsi iteration."""
        p = params
        base = p.msn * p.mb * p.ksn * p.kb
        assert anchor_total_accesses(Anchor.PRE_5, p, "a") == base * p.nsn

    def test_b_total_equal_at_4_and_5(self, params):
        """Fig 3: total B access equal between #4 and #5 (slice differs)."""
        p = params
        assert anchor_total_accesses(Anchor.PRE_4, p, "b") == (
            anchor_total_accesses(Anchor.PRE_5, p, "b")
        )

    def test_b_total_anchor3_redundant_by_msn(self, params):
        p = params
        at2 = anchor_total_accesses(Anchor.PRE_2, p, "b")
        at3 = anchor_total_accesses(Anchor.PRE_3, p, "b")
        assert at3 == at2 * p.msn

    def test_consistency_total_equals_ws_times_visits_when_disjoint(self):
        """For anchors whose slice changes every visit, total accesses equal
        working_set x access_times (brute-force check of the table)."""
        p = MatmulParams(
            m=128, n=128, k=128, mb=32, nb=32, kb=32, bs=2, mpn=2, npn=2
        )
        # A at PRE_4: slice [BS,MB,KB] visited MSN*KSN/BS times; slices are
        # disjoint across visits, covering the A slice exactly once.
        assert anchor_total_accesses(Anchor.PRE_4, p, "a") == (
            anchor_working_set(Anchor.PRE_4, p, "a")
            * anchor_access_times(Anchor.PRE_4, p)
        )
        # C at POST_1: disjoint rows, MSN visits.
        assert anchor_total_accesses(Anchor.POST_1, p, "c") == (
            anchor_working_set(Anchor.POST_1, p, "c")
            * anchor_access_times(Anchor.POST_1, p)
        )


class TestCostTable:
    def test_cost_table_covers_all_rows(self, params):
        table = cost_table(params)
        # 5 pre anchors x 2 operands + 3 post anchors.
        assert len(table) == 13
        anchors = {(r.anchor, r.operand) for r in table}
        for a in PRE_ANCHORS:
            assert (a, "a") in anchors and (a, "b") in anchors
        for a in POST_ANCHORS:
            assert (a, "c") in anchors

    def test_predicates(self):
        assert Anchor.PRE_3.is_pre and not Anchor.PRE_3.is_post
        assert Anchor.POST_2.is_post and not Anchor.POST_2.is_pre
