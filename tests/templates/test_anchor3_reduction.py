"""Tests for the anchor-3 reduction placement (NPN > 1).

The paper: when the reduction is along n, post-op anchor #3 — after the
npi parallel loop — is chosen "since at this point there is no need to
perform synchronization across multiple cores for the final reduction as
the value for the n dimension is all computed".
"""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder
from repro.graph_ir.fused_op import FusedMatmul, OperandMode
from repro.microkernel.machine import XEON_8358
from repro.runtime import Interpreter
from repro.templates.matmul import lower_fused_matmul
from repro.templates.params import MatmulParams
from repro.tensor_ir import TirModule
from repro.tensor_ir.stmt import Alloc, For
from repro.tensor_ir.visitor import walk


def softmax_graph(m, k, n, with_prefix=False, scale=None, mask_shape=None):
    b = GraphBuilder()
    x = b.input("x", DType.f32, (m, k))
    w = b.input("w", DType.f32, (k, n))
    y = b.matmul(x, w)
    extras = []
    if with_prefix:
        y = b.relu(y)
    if mask_shape:
        mask = b.input("mask", DType.f32, mask_shape)
        y = b.add(y, mask)
        extras.append(mask)
    mx = b.reduce_max(y, axis=-1)
    e = b.exp(b.sub(y, mx))
    s = b.reduce_sum(e, axis=-1)
    out = b.div(e, s)
    b.output(out)
    return b.finish(), x, w, out, extras


def run(graph_info, params):
    graph, x, w, out, extras = graph_info
    fused = FusedMatmul(
        name="a3",
        matmul=graph.ops[0],
        post_ops=graph.ops[1:],
        params=params,
        a_mode=OperandMode.PACK_FULL,
        b_mode=OperandMode.PACK_FULL,
    )
    func = lower_fused_matmul(fused, XEON_8358)
    module = TirModule(entry=func.name)
    module.add(func)
    m, k = x.shape
    n = out.shape[-1]
    rng = np.random.RandomState(0)
    X = rng.randn(m, k).astype(np.float32)
    W = (rng.randn(k, n) * 0.1).astype(np.float32)
    res = np.zeros((m, n), np.float32)
    arrays = {x.id: X, w.id: W, out.id: res}
    for extra in extras:
        arrays[extra.id] = rng.randn(*extra.shape).astype(np.float32)
    call = {}
    for tensor, param in zip(
        fused.external_inputs() + [fused.output], func.params
    ):
        call[param.name] = arrays[tensor.id]
    Interpreter(module).run(call)
    return res, X, W, arrays, extras, func


def softmax_ref(logits):
    e = np.exp(logits - logits.max(-1, keepdims=True))
    return e / e.sum(-1, keepdims=True)


class TestAnchor3:
    def test_npn2_matches_reference(self):
        params = MatmulParams(
            m=64, n=128, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        res, X, W, *_ = run(softmax_graph(64, 64, 128), params)
        np.testing.assert_allclose(
            res, softmax_ref(X @ W), rtol=1e-4, atol=1e-6
        )

    def test_npn4_with_eltwise_prefix(self):
        params = MatmulParams(
            m=64, n=128, k=64, mb=16, nb=32, kb=16, bs=4, mpn=4, npn=4
        )
        res, X, W, *_ = run(
            softmax_graph(64, 64, 128, with_prefix=True), params
        )
        np.testing.assert_allclose(
            res, softmax_ref(np.maximum(X @ W, 0)), rtol=1e-4, atol=1e-6
        )

    def test_npn2_with_mask_operand(self):
        params = MatmulParams(
            m=32, n=64, k=32, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        res, X, W, arrays, extras, _ = run(
            softmax_graph(32, 32, 64, mask_shape=(32, 64)), params
        )
        mask = arrays[extras[0].id]
        np.testing.assert_allclose(
            res, softmax_ref(X @ W + mask), rtol=1e-4, atol=1e-6
        )

    def test_padded_n_cropped_before_reduction(self):
        """n=50 pads to 64; padding lanes must not corrupt the softmax."""
        params = MatmulParams(
            m=32, n=64, k=32, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        res, X, W, *_ = run(softmax_graph(32, 32, 50), params)
        np.testing.assert_allclose(
            res, softmax_ref(X @ W), rtol=1e-4, atol=1e-6
        )
        np.testing.assert_allclose(res.sum(-1), np.ones(32), rtol=1e-5)

    def test_anchor3_loop_after_npi(self):
        """Structurally: the reduction loop sits outside the npi loop."""
        params = MatmulParams(
            m=64, n=128, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        *_, func = run(softmax_graph(64, 64, 128), params)
        mpi_loop = next(
            s
            for s in walk(func.body)
            if isinstance(s, For) and s.var.startswith("mpi")
        )
        top_level_vars = [
            s.var for s in mpi_loop.body.body if isinstance(s, For)
        ]
        assert any(v.startswith("npi") for v in top_level_vars)
        assert any(v.startswith("msi_a3") for v in top_level_vars)

    def test_entry_temp_stays_full_size(self):
        """The materialized accumulator rows must survive tensor shrink
        (they are consumed across loop nests)."""
        from repro.tensor_ir.passes import TensorShrinkPass

        params = MatmulParams(
            m=64, n=128, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        *_, func = run(softmax_graph(64, 64, 128), params)
        module = TirModule(entry=func.name)
        module.add(func)
        TensorShrinkPass().run(module)
        entry_allocs = [
            s
            for s in walk(func.body)
            if isinstance(s, Alloc) and s.tensor.startswith("pv_")
        ]
        assert entry_allocs
        # Full [M/MB, N/NB, MB, NB] retained.
        assert entry_allocs[0].shape == (4, 8, 16, 16)
