"""Tests for heuristic constraints (the layout-negotiation interface)."""

import pytest

from repro.dtypes import DType
from repro.microkernel.machine import XEON_8358
from repro.templates.heuristics import (
    HeuristicConstraints,
    select_matmul_params,
)
from repro.templates.params import TemplateKind


class TestBlockConstraints:
    def test_require_mb(self):
        c = HeuristicConstraints(require_mb=48)
        p = select_matmul_params(256, 256, 256, DType.f32, XEON_8358, constraints=c)
        assert p.mb == 48

    def test_require_nb(self):
        c = HeuristicConstraints(require_nb=64)
        p = select_matmul_params(256, 256, 256, DType.f32, XEON_8358, constraints=c)
        assert p.nb == 64

    def test_require_kb(self):
        c = HeuristicConstraints(require_kb=32)
        p = select_matmul_params(256, 256, 256, DType.f32, XEON_8358, constraints=c)
        assert p.kb == 32

    def test_combined_blocks(self):
        c = HeuristicConstraints(require_mb=16, require_kb=64, require_nb=32)
        p = select_matmul_params(512, 512, 512, DType.f32, XEON_8358, constraints=c)
        assert (p.mb, p.nb, p.kb) == (16, 32, 64)

    def test_forced_blocks_skip_efficiency_reject(self):
        """Pinned blocks must be honored even when they score poorly."""
        c = HeuristicConstraints(require_mb=16, require_nb=16, require_kb=16)
        p = select_matmul_params(64, 64, 64, DType.f32, XEON_8358, constraints=c)
        assert (p.mb, p.nb, p.kb) == (16, 16, 16)


class TestParallelConstraints:
    def test_require_mpn(self):
        c = HeuristicConstraints(require_mpn=4)
        p = select_matmul_params(512, 512, 512, DType.f32, XEON_8358, constraints=c)
        assert p.mpn == 4

    def test_require_mpn_and_npn(self):
        c = HeuristicConstraints(require_mpn=2, require_npn=1)
        p = select_matmul_params(512, 512, 512, DType.f32, XEON_8358, constraints=c)
        assert (p.mpn, p.npn) == (2, 1)

    def test_require_outer_overrides(self):
        c = HeuristicConstraints(require_outer=(8, 4))
        p = select_matmul_params(512, 512, 512, DType.f32, XEON_8358, constraints=c)
        assert (p.mpn, p.npn) == (8, 4)

    def test_disallow_k_slicing(self):
        c = HeuristicConstraints(allow_k_slicing=False)
        p = select_matmul_params(16, 64, 16384, DType.f32, XEON_8358, constraints=c)
        assert p.kind is not TemplateKind.K_SLICED
