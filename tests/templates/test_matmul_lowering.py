"""End-to-end tests of the matmul template generator.

Each test builds a FusedMatmul by hand, lowers it with the template
generator, runs the Tensor IR through the interpreter, and compares the
result with the fused region's op-by-op reference evaluation.
"""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir import GraphBuilder, blocked_2d
from repro.graph_ir.fused_op import FusedMatmul, OperandMode
from repro.graph_ir.layout import BlockedLayout
from repro.microkernel.machine import XEON_8358
from repro.runtime import Interpreter
from repro.templates.heuristics import (
    HeuristicConstraints,
    select_matmul_params,
)
from repro.templates.matmul import lower_fused_matmul
from repro.templates.params import MatmulParams, TemplateKind
from repro.tensor_ir import TirModule


def run_fused(fused, buffers_by_id, machine=XEON_8358):
    """Lower, interpret, and return the output array."""
    func = lower_fused_matmul(fused, machine)
    module = TirModule(entry=func.name)
    module.add(func)
    interp = Interpreter(module)
    out = fused.output
    if any(t.id == out.id for t in [fused.a, fused.b]):
        raise AssertionError("output aliases an input")
    # Build the call frame: params follow external_inputs + output order.
    call = {}
    for tensor, param in zip(
        fused.external_inputs() + [fused.output], func.params
    ):
        call[param.name] = buffers_by_id[tensor.id]
    interp.run(call)
    return buffers_by_id[out.id], interp


def alloc_output(fused):
    out = fused.output
    return np.zeros(out.layout.physical_shape(out.shape), out.dtype.to_numpy())


def params_for(fused, dtype, **kw):
    out_shape = fused.matmul.outputs[0].shape
    m, n = out_shape[-2:]
    a = fused.a.shape
    k = a[-2] if fused.matmul.attr("transpose_a") else a[-1]
    batch = 1
    for d in out_shape[:-2]:
        batch *= d
    return select_matmul_params(
        m, n, k, dtype, XEON_8358, batch=batch, **kw
    )


class TestPlainMatmul:
    def test_fp32_exact_sizes(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 128))
        w = b.input("w", DType.f32, (128, 256))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        mm = graph.ops[0]
        fused = FusedMatmul(
            name="mm",
            matmul=mm,
            params=params_for_fixed(64, 256, 128),
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(64, 128).astype(np.float32)
        W = np.random.randn(128, 256).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W, rtol=1e-4, atol=1e-4)

    def test_fp32_padded_sizes(self):
        """M=13, K=479, N=1: every dim needs padding (the MLP_2 shapes)."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (13, 479))
        w = b.input("w", DType.f32, (479, 1))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params_for(
                FusedMatmul(
                    name="t", matmul=graph.ops[0], params=dummy_params()
                ),
                DType.f32,
            ),
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(13, 479).astype(np.float32)
        W = np.random.randn(479, 1).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W, rtol=1e-3, atol=1e-3)

    def test_int8_exact(self):
        b = GraphBuilder()
        x = b.input("x", DType.u8, (32, 64))
        w = b.input("w", DType.s8, (64, 48))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params_for_fixed(32, 48, 64),
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randint(0, 256, (32, 64)).astype(np.uint8)
        W = np.random.randint(-128, 128, (64, 48)).astype(np.int8)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_array_equal(
            out, X.astype(np.int32) @ W.astype(np.int32)
        )

    def test_transpose_b(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (32, 64))
        w = b.input("w", DType.f32, (48, 64))
        y = b.matmul(x, w, transpose_b=True)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params_for_fixed(32, 48, 64),
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(32, 64).astype(np.float32)
        W = np.random.randn(48, 64).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W.T, rtol=1e-4, atol=1e-4)

    def test_transpose_a(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 32))
        w = b.input("w", DType.f32, (64, 48))
        y = b.matmul(x, w, transpose_a=True)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params_for_fixed(32, 48, 64),
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(64, 32).astype(np.float32)
        W = np.random.randn(64, 48).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X.T @ W, rtol=1e-4, atol=1e-4)


def params_for_fixed(m, n, k, dtype=DType.f32, **kw):
    return select_matmul_params(m, n, k, dtype, XEON_8358, **kw)


def dummy_params():
    return MatmulParams(
        m=16, n=16, k=16, mb=16, nb=16, kb=16, bs=1, mpn=1, npn=1
    )


class TestBlockedOperands:
    def test_blocked_inputs_and_output(self):
        """Layout-propagated path: A, B and C all blocked, no packing."""
        params = MatmulParams(
            m=64, n=64, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        y.layout = blocked_2d(16, 16)
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params,
            a_mode=OperandMode.BLOCKED,
            b_mode=OperandMode.BLOCKED,
        )
        X = np.random.randn(64, 64).astype(np.float32)
        W = np.random.randn(64, 64).astype(np.float32)
        buffers = {
            x.id: blocked_2d(16, 16).to_physical(X),
            w.id: blocked_2d(16, 16, swap_inner=True).to_physical(W),
            y.id: alloc_output(fused),
        }
        out, interp = run_fused(fused, buffers)
        np.testing.assert_allclose(
            blocked_2d(16, 16).from_physical(out, (64, 64)),
            X @ W,
            rtol=1e-4,
            atol=1e-4,
        )
        assert interp.stats.pack_stmts == 0  # no packing needed

    def test_pack_slice_mode(self):
        """Fine-grain fused A reorder at pre-op anchor #4."""
        params = MatmulParams(
            m=64, n=64, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
        )
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="mm",
            matmul=graph.ops[0],
            params=params,
            a_mode=OperandMode.PACK_SLICE,
            b_mode=OperandMode.BLOCKED,
        )
        X = np.random.randn(64, 64).astype(np.float32)
        W = np.random.randn(64, 64).astype(np.float32)
        buffers = {
            x.id: X,
            w.id: blocked_2d(16, 16, swap_inner=True).to_physical(W),
            y.id: alloc_output(fused),
        }
        out, interp = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W, rtol=1e-4, atol=1e-4)
        # Slice packs: one per (mpsi, ksi) per core pair = MPSN * KSN/BS.
        assert interp.stats.pack_stmts == 4 * 2 * 2  # mpsn=4 kspb=2 npn=2?
        # (npi loop wraps the msi loop, so packs repeat per npi)


class TestPostOps:
    def _fused_with_post(self, builder, matmul_op, post_ops, params):
        return FusedMatmul(
            name="fused",
            matmul=matmul_op,
            post_ops=post_ops,
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )

    def test_matmul_relu(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        z = b.relu(y)
        b.output(z)
        graph = b.finish()
        fused = self._fused_with_post(
            b, graph.ops[0], [graph.ops[1]], params_for_fixed(64, 64, 64)
        )
        X = np.random.randn(64, 64).astype(np.float32)
        W = np.random.randn(64, 64).astype(np.float32)
        buffers = {x.id: X, w.id: W, z.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, np.maximum(X @ W, 0), rtol=1e-4, atol=1e-4)

    def test_matmul_bias_relu(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 96))
        w = b.input("w", DType.f32, (96, 64))
        bias = b.input("bias", DType.f32, (64,))
        y = b.matmul(x, w)
        y = b.add(y, bias)
        z = b.relu(y)
        b.output(z)
        graph = b.finish()
        fused = self._fused_with_post(
            b, graph.ops[0], graph.ops[1:], params_for_fixed(64, 64, 96)
        )
        X = np.random.randn(64, 96).astype(np.float32)
        W = np.random.randn(96, 64).astype(np.float32)
        B = np.random.randn(64).astype(np.float32)
        buffers = {
            x.id: X, w.id: W, bias.id: B, z.id: alloc_output(fused)
        }
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(
            out, np.maximum(X @ W + B, 0), rtol=1e-4, atol=1e-5
        )

    def test_int8_requant_chain(self):
        """The low-precision rewrite's post-op chain: cast, scale, clip."""
        b = GraphBuilder()
        x = b.input("x", DType.u8, (32, 64))
        w = b.input("w", DType.s8, (64, 32))
        acc = b.matmul(x, w)  # s32
        f = b.cast(acc, DType.f32)
        scaled = b.mul(f, b.scalar("s", 0.02))
        q = b.cast(scaled, DType.s8)
        b.output(q)
        graph = b.finish()
        scalar_tensor = graph.inputs[-1]
        fused = self._fused_with_post(
            b,
            graph.ops[0],
            graph.ops[1:],
            params_for_fixed(32, 32, 64, DType.u8),
        )
        X = np.random.randint(0, 256, (32, 64)).astype(np.uint8)
        W = np.random.randint(-128, 128, (64, 32)).astype(np.int8)
        buffers = {
            x.id: X,
            w.id: W,
            scalar_tensor.id: np.full((1,), 0.02, np.float32),
            q.id: alloc_output(fused),
        }
        out, _ = run_fused(fused, buffers)
        expected = fused.evaluate_reference(
            {
                x.id: X,
                w.id: W,
                scalar_tensor.id: np.full((1,), 0.02, np.float32),
            }
        )
        np.testing.assert_array_equal(out, expected)

    def test_softmax_reduction_group(self):
        """Decomposed softmax fused as post-ops (the MHA pattern)."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 128))
        y = b.matmul(x, w)
        m = b.reduce_max(y, axis=-1)
        sub = b.sub(y, m)
        e = b.exp(sub)
        s = b.reduce_sum(e, axis=-1)
        out = b.div(e, s)
        b.output(out)
        graph = b.finish()
        params = params_for_fixed(
            64, 128, 64, constraints=HeuristicConstraints(require_npn=1)
        )
        fused = self._fused_with_post(
            b, graph.ops[0], graph.ops[1:], params
        )
        X = np.random.randn(64, 64).astype(np.float32)
        W = np.random.randn(64, 128).astype(np.float32) * 0.1
        buffers = {x.id: X, w.id: W, out.id: alloc_output(fused)}
        result, _ = run_fused(fused, buffers)
        logits = X @ W
        expected = np.exp(logits - logits.max(-1, keepdims=True))
        expected /= expected.sum(-1, keepdims=True)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(result.sum(-1), np.ones(64), rtol=1e-5)

    def test_eltwise_then_softmax_group_split(self):
        """Group 1 (div by scale, add mask) + group 2 (softmax reductions)."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (32, 64))
        w = b.input("w", DType.f32, (64, 64))
        mask = b.input("mask", DType.f32, (32, 64))
        y = b.matmul(x, w)
        y = b.div(y, b.scalar("scale", 8.0))
        y = b.add(y, mask)
        m = b.reduce_max(y, axis=-1)
        sub = b.sub(y, m)
        e = b.exp(sub)
        s = b.reduce_sum(e, axis=-1)
        out = b.div(e, s)
        b.output(out)
        graph = b.finish()
        scale_t = next(t for t in graph.inputs if t.name == "scale")
        params = params_for_fixed(
            32, 64, 64, constraints=HeuristicConstraints(require_npn=1)
        )
        fused = self._fused_with_post(b, graph.ops[0], graph.ops[1:], params)
        assert fused.reduction_split_index() == 2
        X = np.random.randn(32, 64).astype(np.float32)
        W = np.random.randn(64, 64).astype(np.float32)
        M = np.random.randn(32, 64).astype(np.float32)
        buffers = {
            x.id: X,
            w.id: W,
            mask.id: M,
            scale_t.id: np.full((1,), 8.0, np.float32),
            out.id: alloc_output(fused),
        }
        result, _ = run_fused(fused, buffers)
        logits = (X @ W) / 8.0 + M
        expected = np.exp(logits - logits.max(-1, keepdims=True))
        expected /= expected.sum(-1, keepdims=True)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-6)


class TestBatchedMatmul:
    def test_batched_with_broadcast_b(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 2, 32, 64))
        w = b.input("w", DType.f32, (64, 48))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        params = params_for_fixed(32, 48, 64, batch=8)
        fused = FusedMatmul(
            name="bmm",
            matmul=graph.ops[0],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(4, 2, 32, 64).astype(np.float32)
        W = np.random.randn(64, 48).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W, rtol=1e-4, atol=1e-4)

    def test_batched_full_rank_b(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (3, 32, 64))
        w = b.input("w", DType.f32, (3, 64, 32))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        params = params_for_fixed(32, 32, 64, batch=3)
        fused = FusedMatmul(
            name="bmm",
            matmul=graph.ops[0],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(3, 32, 64).astype(np.float32)
        W = np.random.randn(3, 64, 32).astype(np.float32)
        buffers = {x.id: X, w.id: W, y.id: alloc_output(fused)}
        out, _ = run_fused(fused, buffers)
        np.testing.assert_allclose(out, X @ W, rtol=1e-4, atol=1e-4)

    def test_batched_matmul_with_mask_and_softmax(self):
        """The full MHA attention score pattern, batched."""
        b = GraphBuilder()
        q = b.input("q", DType.f32, (2, 3, 16, 32))
        k = b.input("k", DType.f32, (2, 3, 16, 32))
        mask = b.input("mask", DType.f32, (2, 1, 1, 16))
        y = b.matmul(q, k, transpose_b=True)
        y = b.div(y, b.scalar("scale", np.sqrt(32.0)))
        y = b.add(y, mask)
        m = b.reduce_max(y, axis=-1)
        e = b.exp(b.sub(y, m))
        s = b.reduce_sum(e, axis=-1)
        out = b.div(e, s)
        b.output(out)
        graph = b.finish()
        scale_t = next(t for t in graph.inputs if t.name == "scale")
        params = params_for_fixed(
            16, 16, 32, batch=6,
            constraints=HeuristicConstraints(require_npn=1),
        )
        fused = FusedMatmul(
            name="attn",
            matmul=graph.ops[0],
            post_ops=graph.ops[1:],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        Q = np.random.randn(2, 3, 16, 32).astype(np.float32)
        K = np.random.randn(2, 3, 16, 32).astype(np.float32)
        M = np.random.randn(2, 1, 1, 16).astype(np.float32)
        buffers = {
            q.id: Q,
            k.id: K,
            mask.id: M,
            scale_t.id: np.full((1,), np.sqrt(32.0), np.float32),
            out.id: alloc_output(fused),
        }
        result, _ = run_fused(fused, buffers)
        logits = Q @ K.transpose(0, 1, 3, 2) / np.sqrt(32.0) + M
        expected = np.exp(logits - logits.max(-1, keepdims=True))
        expected /= expected.sum(-1, keepdims=True)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-6)


class TestKSliced:
    def test_k_sliced_matches_reference(self):
        params = MatmulParams(
            m=32,
            n=32,
            k=256,
            mb=16,
            nb=16,
            kb=16,
            bs=2,
            mpn=2,
            npn=2,
            kpn=4,
            kind=TemplateKind.K_SLICED,
        )
        b = GraphBuilder()
        x = b.input("x", DType.f32, (32, 256))
        w = b.input("w", DType.f32, (256, 32))
        y = b.matmul(x, w)
        z = b.relu(y)
        b.output(z)
        graph = b.finish()
        fused = FusedMatmul(
            name="ks",
            matmul=graph.ops[0],
            post_ops=[graph.ops[1]],
            params=params,
            a_mode=OperandMode.PACK_FULL,
            b_mode=OperandMode.PACK_FULL,
        )
        X = np.random.randn(32, 256).astype(np.float32)
        W = np.random.randn(256, 32).astype(np.float32)
        buffers = {x.id: X, w.id: W, z.id: alloc_output(fused)}
        out, interp = run_fused(fused, buffers)
        np.testing.assert_allclose(out, np.maximum(X @ W, 0), rtol=1e-4, atol=1e-4)
        assert interp.stats.barriers == 1
