"""Tests for the cost model and the parameter-selection heuristic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.errors import HeuristicError
from repro.microkernel.machine import XEON_8358
from repro.templates.cost_model import (
    estimate_matmul_cost,
    load_balance_efficiency,
    microkernel_efficiency,
    padding_efficiency,
    unaligned_k_efficiency,
    access_cycles_per_byte,
)
from repro.templates.heuristics import (
    HeuristicConstraints,
    select_matmul_params,
)
from repro.templates.params import MatmulParams, TemplateKind


class TestMicrokernelEfficiency:
    def test_good_blocking_is_efficient(self):
        eff = microkernel_efficiency(32, 32, 64, 4, DType.f32, XEON_8358)
        assert eff > 0.7

    def test_partial_vector_penalized(self):
        """NB not a multiple of the accumulator lane count wastes lanes."""
        aligned = microkernel_efficiency(32, 32, 64, 4, DType.f32, XEON_8358)
        ragged = microkernel_efficiency(32, 17, 64, 4, DType.f32, XEON_8358)
        assert ragged < aligned

    def test_load_port_bound_tiles_penalized(self):
        """Narrow row chunks make B loads dominate the FMA ports."""
        ok = microkernel_efficiency(14, 32, 64, 2, DType.f32, XEON_8358)
        narrow = microkernel_efficiency(1, 32, 64, 2, DType.f32, XEON_8358)
        assert narrow < ok

    def test_short_k_chain_penalized(self):
        long_k = microkernel_efficiency(32, 32, 64, 4, DType.f32, XEON_8358)
        short_k = microkernel_efficiency(32, 32, 16, 1, DType.f32, XEON_8358)
        assert short_k < long_k

    def test_tiny_tile_cannot_hide_latency(self):
        tiny = microkernel_efficiency(2, 16, 64, 2, DType.f32, XEON_8358)
        good = microkernel_efficiency(16, 32, 64, 2, DType.f32, XEON_8358)
        assert tiny < good


class TestLoadBalance:
    def _params(self, mpn, npn, batch=1):
        return MatmulParams(
            m=mpn * 32,
            n=npn * 32,
            k=64,
            mb=32,
            nb=32,
            kb=64,
            bs=1,
            mpn=mpn,
            npn=npn,
            batch=batch,
        )

    def test_exact_core_coverage(self):
        p = self._params(4, 8)
        assert load_balance_efficiency(p, XEON_8358) == 1.0

    def test_under_subscription(self):
        p = self._params(2, 2)
        assert load_balance_efficiency(p, XEON_8358) == pytest.approx(4 / 32)

    def test_ragged_final_wave(self):
        p = self._params(4, 8, batch=3)  # 96 tasks on 32 cores = 3 waves
        assert load_balance_efficiency(p, XEON_8358) == 1.0
        p = self._params(4, 8, batch=2)  # 64 -> fine
        assert load_balance_efficiency(p, XEON_8358) == 1.0
        p = self._params(5, 7)  # 35 tasks -> 2 waves, 35/64
        assert load_balance_efficiency(p, XEON_8358) == pytest.approx(35 / 64)


class TestAlignmentAndPadding:
    def test_aligned_k_no_penalty(self):
        assert unaligned_k_efficiency(512, DType.f32, False) == 1.0
        assert unaligned_k_efficiency(64, DType.s8, False) == 1.0

    def test_k479_penalty_worse_for_template(self):
        """The paper's k=479 case: primitives handle tails better."""
        expert = unaligned_k_efficiency(479, DType.f32, True)
        template = unaligned_k_efficiency(479, DType.f32, False)
        assert template < expert < 1.0

    def test_padding_efficiency(self):
        assert padding_efficiency((13, 512, 256), (16, 512, 256)) == 13 / 16
        assert padding_efficiency((16, 16, 16), (16, 16, 16)) == 1.0

    def test_access_cost_increases_with_working_set(self):
        small = access_cycles_per_byte(16 * 1024, XEON_8358)
        mid = access_cycles_per_byte(512 * 1024, XEON_8358)
        huge = access_cycles_per_byte(1 << 30, XEON_8358)
        assert small < mid < huge


class TestSelectParams:
    def test_mlp1_layer_shape(self):
        p = select_matmul_params(256, 512, 256, DType.f32, XEON_8358)
        assert p.m >= 256 and p.n >= 512 and p.k >= 256
        assert p.num_cores_used <= 4 * XEON_8358.num_cores
        # A sane choice keeps the microkernel efficient.
        eff = microkernel_efficiency(p.mb, p.nb, p.kb, p.bs, DType.f32, XEON_8358)
        assert eff > 0.5

    def test_small_m_padded(self):
        p = select_matmul_params(13, 512, 256, DType.f32, XEON_8358)
        assert p.m % p.mb == 0
        assert p.m >= 13
        assert p.m <= 64  # should not pad wildly

    def test_k479_padded_to_block(self):
        p = select_matmul_params(256, 1024, 479, DType.f32, XEON_8358)
        assert p.k % p.kb == 0
        assert p.k >= 479
        assert p.k <= 512

    def test_n1_layer(self):
        """MLP_2's final layer has N=1."""
        p = select_matmul_params(256, 1, 256, DType.f32, XEON_8358)
        assert p.n >= 1 and p.n % p.nb == 0

    def test_int8_uses_int8_granularity(self):
        p = select_matmul_params(256, 512, 256, DType.s8, XEON_8358)
        assert p.kb % 4 == 0  # VNNI packs K in groups of 4

    def test_require_npn_one(self):
        c = HeuristicConstraints(require_npn=1)
        p = select_matmul_params(
            128, 128, 64, DType.f32, XEON_8358, batch=256, constraints=c
        )
        assert p.npn == 1

    def test_require_outer_blocking(self):
        c = HeuristicConstraints(require_outer=(4, 8))
        p = select_matmul_params(
            512, 512, 512, DType.f32, XEON_8358, constraints=c
        )
        assert (p.mpn, p.npn) == (4, 8)

    def test_batched_matmul_uses_batch_parallelism(self):
        """With 256 batch tasks available, per-matrix splitting is small."""
        p = select_matmul_params(
            128, 128, 64, DType.f32, XEON_8358, batch=256
        )
        assert p.mpn * p.npn <= 4

    def test_k_slicing_triggers_for_single_sample(self):
        """One small-M sample with huge K should k-slice for parallelism."""
        p = select_matmul_params(
            16, 64, 16384, DType.f32, XEON_8358
        )
        # Either k-sliced or at least not catastrophically unbalanced.
        if p.kind is TemplateKind.K_SLICED:
            assert p.kpn > 1
        assert load_balance_efficiency(p, XEON_8358) > 0.01

    def test_degenerate_rejected(self):
        with pytest.raises(HeuristicError):
            select_matmul_params(0, 4, 4, DType.f32, XEON_8358)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=1, max_value=600),
        st.integers(min_value=1, max_value=600),
        st.sampled_from([DType.f32, DType.s8]),
    )
    def test_always_returns_valid_params(self, m, n, k, dtype):
        """The heuristic produces a consistent assignment for any shape."""
        p = select_matmul_params(m, n, k, dtype, XEON_8358)
        assert p.m >= m and p.n >= n and p.k >= k
        assert p.m % (p.mb * p.mpn) == 0
        assert p.n % (p.nb * p.npn) == 0
        assert p.k % (p.kb * p.kpn) == 0
        assert p.ksn % p.bs == 0

    def test_cost_breakdown_fields(self):
        p = select_matmul_params(256, 512, 256, DType.f32, XEON_8358)
        cost = estimate_matmul_cost(p, DType.f32, XEON_8358)
        assert cost.total_cycles > 0
        assert cost.compute_cycles > 0
        assert cost.memory_cycles > 0
        assert 0 < cost.efficiency <= 1
        assert 0 < cost.balance <= 1

    def test_int8_faster_than_fp32(self):
        """Same problem: int8 estimated cost should be well below fp32."""
        pf = select_matmul_params(512, 1024, 1024, DType.f32, XEON_8358)
        pi = select_matmul_params(512, 1024, 1024, DType.s8, XEON_8358)
        cf = estimate_matmul_cost(pf, DType.f32, XEON_8358).total_cycles
        ci = estimate_matmul_cost(pi, DType.s8, XEON_8358).total_cycles
        assert ci < cf
