"""Shared hardware-granularity rules (templates.validity).

PR 2 factored these out of the heuristic so the tuner's search space and
the heuristic's generators cannot drift.  The property tests walk a grid
of problem shapes and check every tuning-space candidate against
``check_params`` — the single validity oracle — and against the caller's
constraints.
"""

import pytest

from repro.dtypes import DType
from repro.errors import HeuristicError
from repro.microkernel.machine import XEON_8358
from repro.templates import validity
from repro.templates.heuristics import (
    HeuristicConstraints,
    select_matmul_params,
)
from repro.templates.params import MatmulParams
from repro.tuner import TuningSpace

MACHINE = XEON_8358

SHAPE_GRID = [
    # (m, n, k, batch) covering tiny, skewed and Fig-7-like problems.
    (16, 16, 16, 1),
    (64, 256, 128, 1),
    (256, 256, 256, 1),
    (1, 1024, 1024, 1),
    (128, 64, 4096, 1),
    (32, 128, 128, 16),
]


class TestRules:
    def test_k_pack(self):
        assert validity.k_pack(DType.s8) == 4
        assert validity.k_pack(DType.u8) == 4
        assert validity.k_pack(DType.bf16) == 2
        assert validity.k_pack(DType.f32) == 1

    def test_accumulator_lanes_match_machine(self):
        # f32/s8 accumulate in 32-bit: 16 lanes per AVX-512 register.
        assert validity.accumulator_lanes(DType.f32, MACHINE) == 16
        assert validity.accumulator_lanes(DType.s8, MACHINE) == 16

    def test_working_set_matches_params_method(self):
        # The validity formula and MatmulParams.microkernel_working_set_bytes
        # must be the same quantity (this was the PR's drift risk).
        params = MatmulParams(
            m=64, n=64, k=64, mb=32, nb=32, kb=16, bs=2, mpn=2, npn=2
        )
        for dtype in (DType.f32, DType.bf16, DType.s8):
            acc = 4
            assert validity.microkernel_working_set_bytes(
                params.mb, params.nb, params.kb, params.bs, dtype
            ) == params.microkernel_working_set_bytes(dtype.size, acc)

    def test_register_fit_bound(self):
        lanes = validity.accumulator_lanes(DType.f32, MACHINE)
        usable = MACHINE.num_vector_registers - validity.RESERVED_REGISTERS
        assert validity.accumulator_tile_fits_registers(
            lanes * usable, DType.f32, MACHINE
        )
        assert not validity.accumulator_tile_fits_registers(
            lanes * (usable + 1), DType.f32, MACHINE
        )

    def test_check_params_flags_violations(self):
        good = MatmulParams(
            m=64, n=64, k=64, mb=32, nb=32, kb=16, bs=2, mpn=2, npn=2
        )
        assert validity.check_params(good, DType.f32, MACHINE) == []
        # NB not a multiple of the accumulator lanes.
        bad_nb = MatmulParams(
            m=64, n=72, k=64, mb=32, nb=24, kb=16, bs=2, mpn=2, npn=3
        )
        assert any(
            "NB" in v for v in validity.check_params(bad_nb, DType.f32, MACHINE)
        )
        # KB violating the VNNI k-pack for int8.
        bad_kb = MatmulParams(
            m=64, n=64, k=126, mb=32, nb=32, kb=18, bs=1, mpn=2, npn=2
        )
        assert any(
            "KB" in v for v in validity.check_params(bad_kb, DType.s8, MACHINE)
        )
        # K chain too short for the skewed-wide problem class.
        short_k = MatmulParams(
            m=64, n=64, k=8, mb=32, nb=32, kb=8, bs=1, mpn=2, npn=2
        )
        assert any(
            "chain" in v.lower()
            for v in validity.check_params(short_k, DType.f32, MACHINE)
        )


class TestPinValidation:
    """The silent-inconsistency fix: granularity-violating pins now raise."""

    def test_pinned_nb_must_match_lanes(self):
        with pytest.raises(HeuristicError):
            select_matmul_params(
                64, 64, 64, DType.f32, MACHINE,
                constraints=HeuristicConstraints(require_nb=24),
            )

    def test_pinned_kb_must_match_k_pack(self):
        with pytest.raises(HeuristicError):
            select_matmul_params(
                64, 64, 128, DType.s8, MACHINE,
                constraints=HeuristicConstraints(require_kb=18),
            )

    def test_pinned_negative_block_raises(self):
        with pytest.raises(HeuristicError):
            select_matmul_params(
                64, 64, 64, DType.f32, MACHINE,
                constraints=HeuristicConstraints(require_mb=-16),
            )

    def test_valid_pins_still_honored(self):
        params = select_matmul_params(
            256, 256, 256, DType.f32, MACHINE,
            constraints=HeuristicConstraints(require_mb=32, require_nb=64),
        )
        assert params.mb == 32 and params.nb == 64


@pytest.mark.parametrize("m,n,k,batch", SHAPE_GRID)
@pytest.mark.parametrize("dtype", [DType.f32, DType.bf16, DType.s8])
class TestSpaceValidity:
    """Property: every tuning-space candidate is hardware-valid."""

    def test_all_candidates_pass_check_params(self, m, n, k, batch, dtype):
        space = TuningSpace(m, n, k, dtype, MACHINE, batch=batch)
        count = 0
        for params in space.candidates():
            violations = validity.check_params(params, dtype, MACHINE)
            assert violations == [], (params.describe(), violations)
            count += 1
        assert count > 0

    def test_candidates_cover_original_problem(self, m, n, k, batch, dtype):
        # Padded sizes cover the original problem and batch is preserved.
        for params in space_head(m, n, k, dtype, batch, 200):
            assert params.m >= m and params.n >= n and params.k >= k
            assert params.batch == batch


def space_head(m, n, k, dtype, batch, count):
    space = TuningSpace(m, n, k, dtype, MACHINE, batch=batch)
    out = []
    for params in space.candidates():
        out.append(params)
        if len(out) >= count:
            break
    return out


class TestSpaceConstraints:
    """Property: constrained spaces only propose constraint-respecting points."""

    PINS = [
        HeuristicConstraints(require_mb=48),
        HeuristicConstraints(require_nb=64),
        HeuristicConstraints(require_kb=32),
        HeuristicConstraints(require_npn=1),
        HeuristicConstraints(require_outer=(8, 4)),
        HeuristicConstraints(allow_k_slicing=False),
        HeuristicConstraints(require_mb=48, require_kb=32, require_mpn=4),
    ]

    @pytest.mark.parametrize("constraints", PINS)
    def test_candidates_respect_pins(self, constraints):
        space = TuningSpace(
            768, 768, 768, DType.f32, MACHINE, constraints=constraints
        )
        count = 0
        for params in space.candidates():
            if constraints.require_mb is not None:
                assert params.mb == constraints.require_mb
            if constraints.require_nb is not None:
                assert params.nb == constraints.require_nb
            if constraints.require_kb is not None:
                assert params.kb == constraints.require_kb
            if constraints.require_mpn is not None:
                assert params.mpn == constraints.require_mpn
            if constraints.require_npn is not None:
                assert params.npn == constraints.require_npn
            if constraints.require_outer is not None:
                assert (params.mpn, params.npn) == constraints.require_outer
            if not constraints.allow_k_slicing:
                assert params.kpn == 1
            count += 1
            if count >= 500:
                break
        assert count > 0

    def test_heuristic_pick_is_in_space(self):
        # The heuristic explores a subset of the space's grid, so its pick
        # must be one of the space's points.
        for m, n, k, batch in [(256, 256, 256, 1), (64, 1024, 1024, 1)]:
            space = TuningSpace(m, n, k, DType.f32, MACHINE, batch=batch)
            pick = space.heuristic_params()
            assert validity.check_params(pick, DType.f32, MACHINE) == []
