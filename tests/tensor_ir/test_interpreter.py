"""Interpreter tests: the Tensor IR execution substrate."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import ExecutionError
from repro.runtime import Interpreter
from repro.tensor_ir import (
    SliceRef,
    TirBuilder,
    TirModule,
)
from repro.tensor_ir.stmt import full_slice


def run_func(func, buffers):
    module = TirModule(entry=func.name)
    module.add(func)
    interp = Interpreter(module)
    interp.run(buffers)
    return interp


class TestBasics:
    def test_fill(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 4))
        b.fill(full_slice("x", (4, 4)), 7.0)
        x = np.zeros((4, 4), dtype=np.float32)
        run_func(b.finish(), {"x": x})
        assert np.all(x == 7.0)

    def test_loop_with_slices(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        with b.for_("i", 4) as i:
            b.fill(SliceRef("x", (i, 0), (1, 8)), 2.0)
        x = np.zeros((4, 8), dtype=np.float32)
        run_func(b.finish(), {"x": x})
        assert np.all(x == 2.0)

    def test_scalar_assignment_in_loop(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (6,))
        with b.for_("i", 2) as i:
            with b.for_("j", 3) as j:
                k = b.let("k", i * 3 + j)
                b.fill(SliceRef("x", (k,), (1,)), 1.0)
        x = np.zeros(6, dtype=np.float32)
        run_func(b.finish(), {"x": x})
        assert np.all(x == 1.0)

    def test_compute_relu(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (8,))
        b.param("y", DType.f32, (8,))
        b.compute("relu", full_slice("y", (8,)), [full_slice("x", (8,))])
        x = np.linspace(-4, 3, 8).astype(np.float32)
        y = np.zeros(8, dtype=np.float32)
        run_func(b.finish(), {"x": x, "y": y})
        np.testing.assert_array_equal(y, np.maximum(x, 0))

    def test_compute_binary_broadcast(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        b.param("bias", DType.f32, (8,))
        b.param("y", DType.f32, (4, 8))
        b.compute(
            "add",
            full_slice("y", (4, 8)),
            [full_slice("x", (4, 8)), full_slice("bias", (8,))],
        )
        x = np.random.rand(4, 8).astype(np.float32)
        bias = np.random.rand(8).astype(np.float32)
        y = np.zeros((4, 8), dtype=np.float32)
        run_func(b.finish(), {"x": x, "bias": bias, "y": y})
        np.testing.assert_allclose(y, x + bias, rtol=1e-6)

    def test_compute_scalar_source(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.param("y", DType.f32, (4,))
        b.compute(
            "mul", full_slice("y", (4,)), [full_slice("x", (4,)), 2.0]
        )
        x = np.arange(4, dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        run_func(b.finish(), {"x": x, "y": y})
        np.testing.assert_array_equal(y, x * 2)

    def test_reduction_with_accumulate_max(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        b.param("m", DType.f32, (4, 1))
        b.fill(full_slice("m", (4, 1)), -1e30)
        with b.for_("j", 2) as j:
            b.compute(
                "reduce_max",
                full_slice("m", (4, 1)),
                [SliceRef("x", (0, j * 4), (4, 4))],
                attrs={"axis": -1, "keepdims": True, "accumulate": "max"},
            )
        x = np.random.rand(4, 8).astype(np.float32)
        m = np.zeros((4, 1), dtype=np.float32)
        run_func(b.finish(), {"x": x, "m": m})
        np.testing.assert_allclose(m, x.max(axis=1, keepdims=True))

    def test_alloc_and_copy(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 4))
        b.param("y", DType.f32, (16,))
        tmp = b.alloc("tmp", DType.f32, (4, 4))
        b.copy(full_slice(tmp, (4, 4)), full_slice("x", (4, 4)))
        b.copy(full_slice("y", (16,)), full_slice(tmp, (4, 4)))
        b.free(tmp)
        x = np.random.rand(4, 4).astype(np.float32)
        y = np.zeros(16, dtype=np.float32)
        interp = run_func(b.finish(), {"x": x, "y": y})
        np.testing.assert_array_equal(y, x.ravel())
        assert interp.stats.peak_temp_bytes == 64


class TestPackUnpack:
    def test_pack_matches_layout(self):
        from repro.graph_ir.layout import blocked_2d

        b = TirBuilder("f")
        b.param("x", DType.f32, (8, 8))
        b.param("xb", DType.f32, (2, 2, 4, 4))
        b.pack(
            full_slice("xb", (2, 2, 4, 4)),
            full_slice("x", (8, 8)),
            block_sizes=(4, 4),
        )
        x = np.random.rand(8, 8).astype(np.float32)
        xb = np.zeros((2, 2, 4, 4), dtype=np.float32)
        run_func(b.finish(), {"x": x, "xb": xb})
        expected = blocked_2d(4, 4).to_physical(x)
        np.testing.assert_array_equal(xb, expected)

    def test_pack_swap_inner_matches_b_layout(self):
        from repro.graph_ir.layout import blocked_2d

        b = TirBuilder("f")
        b.param("x", DType.f32, (8, 6))
        b.param("xb", DType.f32, (2, 2, 3, 4))
        b.pack(
            full_slice("xb", (2, 2, 3, 4)),
            full_slice("x", (8, 6)),
            block_sizes=(4, 3),
            swap_inner=True,
        )
        x = np.random.rand(8, 6).astype(np.float32)
        xb = np.zeros((2, 2, 3, 4), dtype=np.float32)
        run_func(b.finish(), {"x": x, "xb": xb})
        expected = blocked_2d(4, 3, swap_inner=True).to_physical(x)
        np.testing.assert_array_equal(xb, expected)

    def test_pack_pads_tail(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (5, 5))
        b.param("xb", DType.f32, (2, 2, 4, 4))
        b.pack(
            full_slice("xb", (2, 2, 4, 4)),
            full_slice("x", (5, 5)),
            block_sizes=(4, 4),
        )
        x = np.ones((5, 5), dtype=np.float32)
        xb = np.zeros((2, 2, 4, 4), dtype=np.float32)
        run_func(b.finish(), {"x": x, "xb": xb})
        assert xb.sum() == 25.0
        assert xb[1, 1, 0, 0] == 1.0  # element (4, 4) lands in block (1, 1)
        assert xb[1, 1, 3, 3] == 0.0  # padding

    def test_unpack_roundtrip(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (5, 7))
        b.param("xb", DType.f32, (2, 2, 4, 4))
        b.param("y", DType.f32, (5, 7))
        b.pack(
            full_slice("xb", (2, 2, 4, 4)),
            full_slice("x", (5, 7)),
            block_sizes=(4, 4),
        )
        b.unpack(
            full_slice("y", (5, 7)),
            full_slice("xb", (2, 2, 4, 4)),
            block_sizes=(4, 4),
        )
        x = np.random.rand(5, 7).astype(np.float32)
        y = np.zeros((5, 7), dtype=np.float32)
        run_func(
            b.finish(),
            {"x": x, "xb": np.zeros((2, 2, 4, 4), np.float32), "y": y},
        )
        np.testing.assert_array_equal(y, x)

    def test_slice_level_pack_in_loop(self):
        """Anchor-4 style: pack one [1, BS, MB, KB] slab per iteration."""
        MB, KB, BS = 4, 4, 2
        b = TirBuilder("f")
        b.param("A", DType.f32, (8, 16))  # M=8, K=16
        b.param("Ab", DType.f32, (2, 4, MB, KB))
        with b.for_("mpsi", 2) as mpsi:
            with b.for_("ksi", 4, step=BS) as ksi:
                b.pack(
                    SliceRef("Ab", (mpsi, ksi, 0, 0), (1, BS, MB, KB)),
                    SliceRef("A", (mpsi * MB, ksi * KB), (MB, BS * KB)),
                    block_sizes=(MB, KB),
                )
        from repro.graph_ir.layout import blocked_2d

        A = np.random.rand(8, 16).astype(np.float32)
        Ab = np.zeros((2, 4, MB, KB), dtype=np.float32)
        run_func(b.finish(), {"A": A, "Ab": Ab})
        np.testing.assert_array_equal(Ab, blocked_2d(MB, KB).to_physical(A))


class TestBrgemm:
    def test_brgemm_in_loop_nest(self):
        """A minimal single-core kernel: C[M,N] = A x B via brgemm blocks."""
        M, N, K = 8, 8, 16
        MB, NB, KB, BS = 4, 4, 4, 2
        b = TirBuilder("kernel")
        b.param("Ab", DType.f32, (M // MB, K // KB, MB, KB))
        b.param("Bb", DType.f32, (K // KB, N // NB, NB, KB))
        b.param("C", DType.f32, (M, N))
        with b.for_("mi", M // MB) as mi:
            with b.for_("ni", N // NB) as ni:
                acc = b.alloc("acc", DType.f32, (MB, NB))
                b.fill(full_slice(acc, (MB, NB)), 0.0)
                with b.for_("ki", K // KB, step=BS) as ki:
                    b.brgemm(
                        c=full_slice(acc, (MB, NB)),
                        a=SliceRef("Ab", (mi, ki, 0, 0), (1, BS, MB, KB)),
                        b=SliceRef("Bb", (ki, ni, 0, 0), (BS, 1, NB, KB)),
                        batch=BS,
                    )
                b.copy(
                    SliceRef("C", (mi * MB, ni * NB), (MB, NB)),
                    full_slice(acc, (MB, NB)),
                )
                b.free(acc)
        from repro.graph_ir.layout import blocked_2d

        A = np.random.rand(M, K).astype(np.float32)
        B = np.random.rand(K, N).astype(np.float32)
        C = np.zeros((M, N), dtype=np.float32)
        buffers = {
            "Ab": blocked_2d(MB, KB).to_physical(A),
            "Bb": blocked_2d(KB, NB, swap_inner=True).to_physical(B),
            "C": C,
        }
        interp = run_func(b.finish(), buffers)
        np.testing.assert_allclose(C, A @ B, rtol=1e-5)
        assert interp.stats.brgemm_calls == (M // MB) * (N // NB) * (K // KB) // BS

    def test_brgemm_b_batch_dim_second(self):
        """B slices like Bb[ksi:BS, npsi:1, :, :] squeeze via contiguity."""
        # When the batch dim is the first of the slice and the second is 1,
        # the view is [BS, 1, NB, KB]; the interpreter cannot squeeze a
        # middle dim, so lowering must emit [BS,1,NB,KB] -> ascontiguous
        # reshape works since dim-1 is length 1... exercised above; here we
        # check the error path for a non-squeezable shape.
        b = TirBuilder("f")
        b.param("Ab", DType.f32, (2, 2, 4, 4))
        b.param("Bb", DType.f32, (2, 2, 4, 4))
        b.param("C", DType.f32, (4, 4))
        b.brgemm(
            c=full_slice("C", (4, 4)),
            a=SliceRef("Ab", (0, 0, 0, 0), (2, 2, 4, 4)),  # bad: 2x2 batch
            b=SliceRef("Bb", (0, 0, 0, 0), (1, 2, 4, 4)),
            batch=2,
        )
        with pytest.raises(ExecutionError):
            run_func(
                b.finish(),
                {
                    "Ab": np.zeros((2, 2, 4, 4), np.float32),
                    "Bb": np.zeros((2, 2, 4, 4), np.float32),
                    "C": np.zeros((4, 4), np.float32),
                },
            )

    def test_int8_brgemm(self):
        b = TirBuilder("f")
        b.param("A", DType.u8, (1, 4, 8))
        b.param("B", DType.s8, (1, 4, 8))
        b.param("C", DType.s32, (4, 4))
        b.brgemm(
            c=full_slice("C", (4, 4)),
            a=full_slice("A", (1, 4, 8)),
            b=full_slice("B", (1, 4, 8)),
            batch=1,
            initialize=True,
        )
        A = np.random.randint(0, 255, (1, 4, 8)).astype(np.uint8)
        B = np.random.randint(-128, 127, (1, 4, 8)).astype(np.int8)
        C = np.zeros((4, 4), dtype=np.int32)
        run_func(b.finish(), {"A": A, "B": B, "C": C})
        expected = A[0].astype(np.int32) @ B[0].astype(np.int32).T
        np.testing.assert_array_equal(C, expected)


class TestCallsAndErrors:
    def test_cross_function_call(self):
        module = TirModule(entry="main")
        inner = TirBuilder("double")
        inner.param("io", DType.f32, (4,))
        inner.compute(
            "mul", full_slice("io", (4,)), [full_slice("io", (4,)), 2.0]
        )
        module.add(inner.finish())
        outer = TirBuilder("main")
        outer.param("x", DType.f32, (4,))
        outer.call("double", ["x"])
        outer.call("double", ["x"])
        module.add(outer.finish())
        x = np.ones(4, dtype=np.float32)
        interp = Interpreter(module)
        interp.run({"x": x})
        np.testing.assert_array_equal(x, np.full(4, 4.0))
        assert interp.stats.function_calls == 2

    def test_missing_buffer(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        with pytest.raises(ExecutionError, match="missing buffer"):
            run_func(b.finish(), {})

    def test_shape_mismatch(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        with pytest.raises(ExecutionError, match="shape"):
            run_func(b.finish(), {"x": np.zeros(5, dtype=np.float32)})

    def test_out_of_bounds_slice(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.fill(SliceRef("x", (2,), (4,)), 1.0)
        with pytest.raises(ExecutionError, match="out of bounds"):
            run_func(b.finish(), {"x": np.zeros(4, dtype=np.float32)})

    def test_arena_allocation(self):
        from repro.tensor_ir.stmt import Alloc

        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        tmp = b.alloc("tmp", DType.f32, (4,))
        b.copy(full_slice(tmp, (4,)), full_slice("x", (4,)))
        b.compute("mul", full_slice(tmp, (4,)), [full_slice(tmp, (4,)), 3.0])
        b.copy(full_slice("x", (4,)), full_slice(tmp, (4,)))
        func = b.finish()
        # Place the temp at arena offset 64.
        for stmt in func.body.body:
            if isinstance(stmt, Alloc):
                stmt.arena_offset = 64
        module = TirModule(entry="f")
        module.add(func)
        interp = Interpreter(module, arena_size=128)
        x = np.ones(4, dtype=np.float32)
        interp.run({"x": x})
        np.testing.assert_array_equal(x, np.full(4, 3.0))

    def test_arena_overflow(self):
        from repro.tensor_ir.stmt import Alloc

        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        tmp = b.alloc("tmp", DType.f32, (64,))
        b.fill(full_slice(tmp, (64,)), 0.0)
        func = b.finish()
        for stmt in func.body.body:
            if isinstance(stmt, Alloc):
                stmt.arena_offset = 0
        module = TirModule(entry="f")
        module.add(func)
        interp = Interpreter(module, arena_size=16)
        with pytest.raises(ExecutionError, match="arena overflow"):
            interp.run({"x": np.zeros(4, dtype=np.float32)})


class TestPrinter:
    def test_printer_output(self):
        from repro.tensor_ir import format_function

        b = TirBuilder("demo")
        b.param("x", DType.f32, (4, 4))
        with b.parallel_for("i", 4, merge_tag="mlp0") as i:
            b.fill(SliceRef("x", (i, 0), (1, 4)), 0.0)
        text = format_function(b.finish())
        assert "parallel loop i" in text
        assert "merge:mlp0" in text
        assert "func demo" in text
