"""Tests for the Tensor IR optimization passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.runtime import Interpreter
from repro.tensor_ir import (
    Call,
    SliceRef,
    TirBuilder,
    TirModule,
)
from repro.tensor_ir.expr import Const, Var
from repro.tensor_ir.passes import (
    BufferReusePass,
    LoopMergePass,
    SimplifyPass,
    TensorShrinkPass,
)
from repro.tensor_ir.passes.buffer_reuse import _Arena, _align
from repro.tensor_ir.stmt import Alloc, For, full_slice
from repro.tensor_ir.visitor import walk


class TestSimplify:
    def test_folds_loop_bounds_and_offsets(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (16,))
        with b.for_("i", Const(2) * Const(4)) as i:
            b.fill(SliceRef("x", (i * 1 + 0,), (1,)), 1.0)
        module = TirModule(entry="f")
        module.add(b.finish())
        SimplifyPass().run(module)
        func = module.get("f")
        loop = func.body.body[0]
        assert loop.end == Const(8)
        fill = loop.body.body[0]
        assert fill.dst.offsets[0] == Var("i")

    def test_semantics_preserved(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (8,))
        with b.for_("i", 8) as i:
            b.fill(SliceRef("x", ((i + 0) * 1,), (1,)), 3.0)
        module = TirModule(entry="f")
        module.add(b.finish())
        SimplifyPass().run(module)
        x = np.zeros(8, np.float32)
        Interpreter(module).run({"x": x})
        assert np.all(x == 3.0)


class TestTensorShrink:
    def _loop_func(self):
        """temp[i, :] written then read per iteration -> shrinkable dim 0."""
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        b.param("y", DType.f32, (4, 8))
        tmp = b.alloc("tmp", DType.f32, (4, 8))
        with b.for_("i", 4) as i:
            b.compute(
                "mul",
                SliceRef(tmp, (i, 0), (1, 8)),
                [SliceRef("x", (i, 0), (1, 8)), 2.0],
            )
            b.compute(
                "add",
                SliceRef("y", (i, 0), (1, 8)),
                [SliceRef(tmp, (i, 0), (1, 8)), 1.0],
            )
        return b.finish()

    def test_shrinks_iteration_local_temp(self):
        func = self._loop_func()
        module = TirModule(entry="f")
        module.add(func)
        shrink = TensorShrinkPass()
        shrink.run(module)
        alloc = next(s for s in walk(func.body) if isinstance(s, Alloc))
        assert alloc.shape == (1, 8)
        assert "tmp" in shrink.report
        # Offsets rebased to zero in the shrunk dim.
        for stmt in walk(func.body):
            for ref in getattr(stmt, "srcs", []):
                if isinstance(ref, SliceRef) and ref.tensor == "tmp":
                    assert ref.offsets[0] == Const(0)

    def test_shrunk_function_still_correct(self):
        func = self._loop_func()
        module = TirModule(entry="f")
        module.add(func)
        TensorShrinkPass().run(module)
        x = np.random.rand(4, 8).astype(np.float32)
        y = np.zeros((4, 8), np.float32)
        Interpreter(module).run({"x": x, "y": y})
        np.testing.assert_allclose(y, x * 2 + 1, rtol=1e-6)

    def test_does_not_shrink_accumulated_buffer(self):
        """A buffer read before written (accumulator) must not shrink."""
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        acc = b.alloc("acc", DType.f32, (4, 8))
        with b.for_("i", 4) as i:
            # Read-before-write pattern: first access is a read.
            b.compute(
                "add",
                SliceRef("x", (i, 0), (1, 8)),
                [SliceRef(acc, (i, 0), (1, 8)), SliceRef("x", (i, 0), (1, 8))],
            )
        func = b.finish()
        module = TirModule(entry="f")
        module.add(func)
        shrink = TensorShrinkPass()
        shrink.run(module)
        assert "acc" not in shrink.report

    def test_does_not_shrink_cross_iteration_values(self):
        """Different offset expressions per dim block shrinking."""
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        tmp = b.alloc("tmp", DType.f32, (4, 8))
        with b.for_("i", 4) as i:
            b.compute(
                "mul",
                SliceRef(tmp, (i, 0), (1, 8)),
                [SliceRef("x", (i, 0), (1, 8)), 2.0],
            )
        # Read everything at the end: offsets 0 full size.
        b.compute(
            "add", SliceRef("x", (0, 0), (4, 8)),
            [SliceRef(tmp, (0, 0), (4, 8)), 1.0],
        )
        func = b.finish()
        module = TirModule(entry="f")
        module.add(func)
        shrink = TensorShrinkPass()
        shrink.run(module)
        alloc = next(s for s in walk(func.body) if isinstance(s, Alloc))
        assert alloc.shape == (4, 8)  # unchanged


class TestArena:
    def test_align(self):
        assert _align(1) == 64
        assert _align(64) == 64
        assert _align(65) == 128

    def test_reuses_most_recently_freed(self):
        arena = _Arena()
        a = arena.allocate(128)
        b = arena.allocate(128)
        arena.release(a, 128)
        arena.release(b, 128)
        # b was freed last -> preferred for reuse (hot in cache)...
        c = arena.allocate(128)
        # after coalescing a+b merge; the merged block starts at a.
        assert c in (a, b)
        assert arena.size == 256

    def test_grows_when_no_fit(self):
        arena = _Arena()
        a = arena.allocate(128)
        arena.release(a, 128)
        big = arena.allocate(256)
        assert big == 128  # appended after the (too small) free block
        assert arena.size == 384

    def test_coalescing(self):
        arena = _Arena()
        a = arena.allocate(64)
        b = arena.allocate(64)
        c = arena.allocate(64)
        arena.release(a, 64)
        arena.release(b, 64)
        arena.release(c, 64)
        # All three coalesce into one block covering the whole arena.
        assert len(arena.free) == 1
        assert arena.free[0] == (0, 192)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4096),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_no_live_overlap_property(self, events):
        """Live allocations never overlap, whatever the alloc/free order."""
        arena = _Arena()
        live = {}  # handle -> (offset, size)
        for index, (size, do_free) in enumerate(events):
            if do_free and live:
                handle = next(iter(live))
                offset, s = live.pop(handle)
                arena.release(offset, s)
            else:
                offset = arena.allocate(size)
                live[index] = (offset, _align(size))
            intervals = sorted(live.values())
            for (o1, s1), (o2, s2) in zip(intervals, intervals[1:]):
                assert o1 + s1 <= o2, "live buffers overlap"


class TestBufferReusePass:
    def test_entry_plan_and_execution(self):
        """Two sequential temps share one arena slot; execution is correct."""
        module = TirModule(entry="main")
        inner = TirBuilder("scale")
        inner.param("src", DType.f32, (16,))
        inner.param("dst", DType.f32, (16,))
        inner.compute(
            "mul", full_slice("dst", (16,)), [full_slice("src", (16,)), 2.0]
        )
        module.add(inner.finish())
        b = TirBuilder("main")
        b.param("x", DType.f32, (16,))
        b.param("y", DType.f32, (16,))
        t1 = b.alloc("t1", DType.f32, (16,))
        b.call("scale", ["x", t1])
        t2 = b.alloc("t2", DType.f32, (16,))
        b.call("scale", [t1, t2])
        b.free(t1)
        t3 = b.alloc("t3", DType.f32, (16,))
        b.call("scale", [t2, t3])
        b.free(t2)
        b.call("scale", [t3, "y"])
        b.free(t3)
        module.add(b.finish())
        reuse = BufferReusePass()
        reuse.run(module)
        plan = reuse.plans["main"]
        assert plan.arena_size < plan.naive_total
        x = np.arange(16, dtype=np.float32)
        y = np.zeros(16, np.float32)
        interp = Interpreter(module, arena_size=plan.arena_size)
        interp.run({"x": x, "y": y})
        np.testing.assert_array_equal(y, x * 16)


class TestLoopMerge:
    def _member(self, name, tag, buf_in, buf_out):
        b = TirBuilder(name)
        b.param(buf_in, DType.f32, (4, 8))
        b.param(buf_out, DType.f32, (4, 8))
        with b.parallel_for("i", 4, merge_tag=tag) as i:
            b.compute(
                "mul",
                SliceRef(buf_out, (i, 0), (1, 8)),
                [SliceRef(buf_in, (i, 0), (1, 8)), 2.0],
            )
        return b.finish()

    def test_merges_tagged_functions(self):
        module = TirModule(entry="main")
        module.add(self._member("f0", "g", "a", "b"))
        module.add(self._member("f1", "g", "b", "c"))
        main = TirBuilder("main")
        main.param("a", DType.f32, (4, 8))
        main.param("c", DType.f32, (4, 8))
        t = main.alloc("b", DType.f32, (4, 8))
        main.call("f0", ["a", "b"])
        main.call("f1", ["b", "c"])
        main.free("b")
        module.add(main.finish())

        merger = LoopMergePass()
        merger.run(module)
        assert merger.merged_groups == [["f0", "f1"]]
        assert "f0" not in module.functions
        merged_name = next(n for n in module.functions if "merged" in n)
        merged = module.get(merged_name)
        # One merged top-level loop containing both bodies.
        loops = [
            s for s in merged.body.body if isinstance(s, For) and s.parallel
        ]
        assert len(loops) == 1
        # Execution: c = a * 4.
        a = np.random.rand(4, 8).astype(np.float32)
        c = np.zeros((4, 8), np.float32)
        Interpreter(module).run({"a": a, "c": c})
        np.testing.assert_allclose(c, a * 4, rtol=1e-6)

    def test_different_tags_not_merged(self):
        module = TirModule(entry="main")
        module.add(self._member("f0", "g0", "a", "b"))
        module.add(self._member("f1", "g1", "b", "c"))
        main = TirBuilder("main")
        main.param("a", DType.f32, (4, 8))
        main.param("c", DType.f32, (4, 8))
        main.alloc("b", DType.f32, (4, 8))
        main.call("f0", ["a", "b"])
        main.call("f1", ["b", "c"])
        module.add(main.finish())
        merger = LoopMergePass()
        merger.run(module)
        assert merger.merged_groups == []
        assert "f0" in module.functions

    def test_shared_buffer_becomes_one_param(self):
        module = TirModule(entry="main")
        module.add(self._member("f0", "g", "a", "b"))
        module.add(self._member("f1", "g", "b", "c"))
        main = TirBuilder("main")
        main.param("a", DType.f32, (4, 8))
        main.param("c", DType.f32, (4, 8))
        main.alloc("b", DType.f32, (4, 8))
        main.call("f0", ["a", "b"])
        main.call("f1", ["b", "c"])
        module.add(main.finish())
        LoopMergePass().run(module)
        merged_name = next(n for n in module.functions if "merged" in n)
        merged = module.get(merged_name)
        assert len(merged.params) == 3  # a, b, c — b deduplicated

    def test_three_way_merge(self):
        module = TirModule(entry="main")
        module.add(self._member("f0", "g", "a", "b"))
        module.add(self._member("f1", "g", "b", "c"))
        module.add(self._member("f2", "g", "c", "d"))
        main = TirBuilder("main")
        main.param("a", DType.f32, (4, 8))
        main.param("d", DType.f32, (4, 8))
        main.alloc("b", DType.f32, (4, 8))
        main.alloc("c", DType.f32, (4, 8))
        main.call("f0", ["a", "b"])
        main.call("f1", ["b", "c"])
        main.call("f2", ["c", "d"])
        module.add(main.finish())
        merger = LoopMergePass()
        merger.run(module)
        assert merger.merged_groups == [["f0", "f1", "f2"]]
        a = np.random.rand(4, 8).astype(np.float32)
        d = np.zeros((4, 8), np.float32)
        Interpreter(module).run({"a": a, "d": d})
        np.testing.assert_allclose(d, a * 8, rtol=1e-6)
