"""Unit and property tests for Tensor IR scalar expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TensorIRError
from repro.tensor_ir.expr import (
    Binary,
    BinaryOp,
    Const,
    Var,
    as_expr,
    evaluate,
    fold,
    free_vars,
)


class TestConstruction:
    def test_operator_overloads(self):
        i = Var("i")
        expr = i * 4 + 2
        assert evaluate(expr, {"i": 3}) == 14

    def test_reverse_operators(self):
        i = Var("i")
        assert evaluate(10 - i, {"i": 3}) == 7
        assert evaluate(2 * i, {"i": 3}) == 6
        assert evaluate(1 + i, {"i": 3}) == 4

    def test_floordiv_mod(self):
        i = Var("i")
        assert evaluate(i // 4, {"i": 13}) == 3
        assert evaluate(i % 4, {"i": 13}) == 1

    def test_as_expr(self):
        assert as_expr(5) == Const(5)
        v = Var("x")
        assert as_expr(v) is v
        with pytest.raises(TensorIRError):
            as_expr("nope")


class TestEvaluate:
    def test_unbound_variable(self):
        with pytest.raises(TensorIRError, match="unbound"):
            evaluate(Var("ghost"), {})

    def test_division_by_zero(self):
        with pytest.raises(TensorIRError):
            evaluate(Binary(BinaryOp.FLOORDIV, Const(1), Const(0)), {})
        with pytest.raises(TensorIRError):
            evaluate(Binary(BinaryOp.MOD, Const(1), Const(0)), {})

    def test_min_max(self):
        assert evaluate(Binary(BinaryOp.MIN, Const(3), Const(5)), {}) == 3
        assert evaluate(Binary(BinaryOp.MAX, Const(3), Const(5)), {}) == 5


class TestFold:
    def test_constants_fold(self):
        assert fold(Const(2) + Const(3)) == Const(5)

    def test_identity_add_zero(self):
        i = Var("i")
        assert fold(i + 0) == i
        assert fold(0 + i) == i

    def test_identity_mul_one(self):
        i = Var("i")
        assert fold(i * 1) == i
        assert fold(1 * i) == i

    def test_mul_zero(self):
        i = Var("i")
        assert fold(i * 0) == Const(0)

    def test_sub_zero(self):
        i = Var("i")
        assert fold(i - 0) == i

    def test_div_one(self):
        i = Var("i")
        assert fold(i // 1) == i

    def test_nested_fold(self):
        i = Var("i")
        expr = (i * 1 + 0) * (Const(2) + Const(2))
        folded = fold(expr)
        assert evaluate(folded, {"i": 5}) == 20

    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    def test_fold_preserves_value(self, a, b, c):
        """Folding never changes evaluation results."""
        i, j = Var("i"), Var("j")
        expr = (i + b) * c + (j - a) // c + (i % c)
        env = {"i": a, "j": b}
        assert evaluate(fold(expr), env) == evaluate(expr, env)


class TestFreeVars:
    def test_free_vars(self):
        i, j = Var("i"), Var("j")
        assert free_vars(i * 4 + j) == {"i", "j"}
        assert free_vars(Const(3)) == set()
