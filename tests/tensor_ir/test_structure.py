"""Tests for Tensor IR structures: functions, modules, printer,
substitution and visitors."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import TensorIRError
from repro.tensor_ir import (
    SliceRef,
    TirBuilder,
    TirModule,
    format_function,
    format_module,
)
from repro.tensor_ir.expr import Const, Var
from repro.tensor_ir.function import TensorDecl, TirFunction
from repro.tensor_ir.stmt import (
    Alloc,
    Barrier,
    BrgemmCall,
    Call,
    Compute,
    Copy,
    Fill,
    For,
    Free,
    Pack,
    Seq,
    Unpack,
    full_slice,
)
from repro.tensor_ir.substitute import (
    collect_local_names,
    rewrite_stmt,
    substitute_expr,
)
from repro.tensor_ir.visitor import (
    reads_of,
    slices_of,
    tensors_used,
    transform,
    walk,
    writes_of,
)


def sample_function():
    b = TirBuilder("f")
    b.param("x", DType.f32, (8, 8))
    b.param("y", DType.f32, (8, 8))
    tmp = b.alloc("tmp", DType.f32, (8,))
    with b.parallel_for("i", 8, merge_tag="t") as i:
        j = b.let("j", i * 1)
        b.fill(SliceRef(tmp, (0,), (8,)), 0.0)
        b.compute(
            "add",
            SliceRef("y", (j, 0), (1, 8)),
            [SliceRef("x", (j, 0), (1, 8)), SliceRef(tmp, (0,), (8,))],
        )
    b.free(tmp)
    return b.finish()


class TestFunctionAndModule:
    def test_param_lookup(self):
        func = sample_function()
        assert func.param("x").shape == (8, 8)
        assert func.has_param("y")
        assert not func.has_param("ghost")
        with pytest.raises(TensorIRError):
            func.param("ghost")

    def test_local_decls(self):
        func = sample_function()
        decls = func.local_decls()
        assert set(decls) == {"tmp"}

    def test_double_alloc_detected(self):
        func = TirFunction(name="f")
        func.body = Seq(
            body=[
                Alloc(tensor="t", dtype=DType.f32, shape=(4,)),
                Alloc(tensor="t", dtype=DType.f32, shape=(4,)),
            ]
        )
        with pytest.raises(TensorIRError, match="allocated twice"):
            func.local_decls()

    def test_module_add_and_get(self):
        module = TirModule(entry="main")
        func = sample_function()
        module.add(func)
        assert module.get("f") is func
        with pytest.raises(TensorIRError):
            module.add(sample_function())  # same name
        with pytest.raises(TensorIRError):
            module.get("missing")

    def test_tensor_decl_sizes(self):
        decl = TensorDecl(name="t", dtype=DType.s8, shape=(4, 8))
        assert decl.num_elements == 32
        assert decl.size_bytes == 32


class TestPrinter:
    def test_function_rendering(self):
        text = format_function(sample_function())
        assert "func f(" in text
        assert "parallel loop i" in text
        assert "merge:t" in text
        assert "alloc" in text and "free tmp;" in text
        assert "add(" in text

    def test_module_rendering(self):
        module = TirModule(name="m", entry="f")
        module.add(sample_function())
        text = format_module(module)
        assert "module m (entry=f)" in text

    def test_all_statement_kinds_render(self):
        b = TirBuilder("k")
        b.param("a", DType.f32, (1, 4, 4))
        b.param("bb", DType.f32, (1, 4, 4))
        b.param("c", DType.f32, (4, 4))
        b.param("p", DType.f32, (8, 8))
        b.param("pb", DType.f32, (2, 2, 4, 4))
        b.brgemm(
            c=full_slice("c", (4, 4)),
            a=full_slice("a", (1, 4, 4)),
            b=full_slice("bb", (1, 4, 4)),
            batch=1,
        )
        b.pack(
            full_slice("pb", (2, 2, 4, 4)),
            full_slice("p", (8, 8)),
            (4, 4),
            swap_inner=True,
        )
        b.unpack(
            full_slice("p", (8, 8)),
            full_slice("pb", (2, 2, 4, 4)),
            (4, 4),
        )
        b.copy(full_slice("c", (4, 4)), full_slice("c", (4, 4)))
        b.barrier("note")
        b.call("other", ["c"])
        text = format_function(b.finish())
        for token in (
            "batch_reduce_gemm",
            "pack(",
            "unpack(",
            "barrier;",
            "other(c);",
            "swap",
        ):
            assert token in text, token


class TestSubstitution:
    def test_expr_substitution(self):
        expr = Var("i") * 4 + Var("j")
        out = substitute_expr(expr, {"i": Var("k"), "j": Const(2)})
        from repro.tensor_ir.expr import evaluate

        assert evaluate(out, {"k": 3}) == 14

    def test_stmt_rewrite_renames_everything(self):
        func = sample_function()
        rewritten = rewrite_stmt(
            func.body, {"i": Var("m0_i"), "j": Var("m0_j")}, {"tmp": "m0_tmp"}
        )
        names = collect_local_names(rewritten)
        assert "m0_i" in names and "m0_tmp" in names
        assert "i" not in names

    def test_collect_local_names(self):
        func = sample_function()
        names = collect_local_names(func.body)
        assert names == {"i", "j", "tmp"}


class TestVisitors:
    def test_walk_counts(self):
        func = sample_function()
        kinds = [type(s).__name__ for s in walk(func.body)]
        assert "For" in kinds and "Compute" in kinds and "Fill" in kinds

    def test_reads_writes(self):
        func = sample_function()
        compute = next(s for s in walk(func.body) if isinstance(s, Compute))
        assert {r.tensor for r in reads_of(compute)} == {"x", "tmp"}
        assert [w.tensor for w in writes_of(compute)] == ["y"]

    def test_tensors_used(self):
        func = sample_function()
        assert tensors_used(func.body) == {"x", "y", "tmp"}

    def test_transform_replaces_nodes(self):
        func = sample_function()

        def kill_fills(stmt):
            if isinstance(stmt, Fill):
                return Seq(body=[])
            return None

        out = transform(func.body, kill_fills)
        assert not any(isinstance(s, Fill) for s in walk(out))
        # Original tree untouched.
        assert any(isinstance(s, Fill) for s in walk(func.body))


class TestBuilder:
    def test_fresh_names(self):
        b = TirBuilder("f")
        assert b.fresh("x") == "x"
        assert b.fresh("x") == "x_1"
        assert b.fresh("x") == "x_2"

    def test_unbalanced_scope_detected(self):
        b = TirBuilder("f")
        ctx = b.for_("i", 4)
        ctx.__enter__()
        with pytest.raises(TensorIRError, match="unbalanced"):
            b.finish()
