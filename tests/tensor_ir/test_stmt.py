"""Unit tests for Tensor IR statement/slice primitives."""

import pytest

from repro.dtypes import DType
from repro.errors import TensorIRError
from repro.runtime.interpreter import ExecutionStats
from repro.tensor_ir.expr import Const, Var
from repro.tensor_ir.stmt import (
    Alloc,
    BrgemmCall,
    Compute,
    For,
    Seq,
    SliceRef,
    full_slice,
)


class TestSliceRef:
    def test_coerces_int_offsets(self):
        ref = SliceRef("t", (0, 2), (4, 4))
        assert ref.offsets == (Const(0), Const(2))

    def test_num_elements(self):
        assert SliceRef("t", (0, 0), (4, 8)).num_elements == 32

    def test_repr(self):
        ref = SliceRef("t", (Var("i"), 0), (1, 8))
        assert repr(ref) == "t[i:1, 0:8]"

    def test_full_slice(self):
        ref = full_slice("t", (2, 3))
        assert ref.offsets == (Const(0), Const(0))
        assert ref.sizes == (2, 3)

    def test_frozen(self):
        ref = SliceRef("t", (0,), (4,))
        with pytest.raises(Exception):
            ref.tensor = "other"


class TestStatements:
    def test_for_coerces_bounds(self):
        loop = For(var="i", begin=0, end=8, step=2, body=Seq())
        assert loop.begin == Const(0)
        assert loop.end == Const(8)
        assert loop.step == Const(2)

    def test_alloc_shape_normalized(self):
        alloc = Alloc(tensor="t", dtype=DType.f32, shape=[4, 8])
        assert alloc.shape == (4, 8)
        assert alloc.arena_offset is None
        assert not alloc.thread_local

    def test_compute_defaults(self):
        c = Compute(op="relu", dst=full_slice("t", (4,)), srcs=[])
        assert c.attrs == {}

    def test_brgemm_defaults(self):
        call = BrgemmCall(
            c=full_slice("c", (4, 4)),
            a=full_slice("a", (1, 4, 4)),
            b=full_slice("b", (1, 4, 4)),
            batch=1,
        )
        assert call.b_transposed
        assert not call.initialize


class TestExecutionStats:
    def test_peak_tracking(self):
        stats = ExecutionStats()
        stats.note_alloc(100)
        stats.note_alloc(50)
        stats.note_free(100)
        stats.note_alloc(30)
        assert stats.peak_temp_bytes == 150

    def test_free_never_negative(self):
        stats = ExecutionStats()
        stats.note_free(1000)
        stats.note_alloc(10)
        assert stats.peak_temp_bytes == 10
