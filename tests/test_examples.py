"""Smoke tests: the example scripts must run end to end.

(The DLRM sweep example is exercised by the benchmarks instead — its full
batch sweep takes minutes.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "max |compiled - numpy|" in out
        assert "Tensor IR" in out

    def test_bert_attention(self, capsys):
        run_example("bert_attention.py")
        out = capsys.readouterr().out
        assert "what the compiler did" in out

    def test_custom_machine(self, capsys):
        run_example("custom_machine.py")
        out = capsys.readouterr().out
        assert "xeon-8358" in out
        assert "laptop-8c" in out

    def test_cnn_layer(self, capsys):
        run_example("cnn_layer.py")
        out = capsys.readouterr().out
        assert "ok" in out

    def test_serving_mlp(self, capsys):
        run_example("serving_mlp.py")
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "per-bucket compile counts" in out
        assert "ok" in out

    def test_serving_batched(self, capsys):
        run_example("serving_batched.py")
        out = capsys.readouterr().out
        assert "bit-identical to unbatched: yes" in out
        assert "BatchingStats" in out
        assert "coalesce ratio" in out
        assert "ok" in out

    def test_serving_sharded(self, capsys):
        run_example("serving_sharded.py")
        out = capsys.readouterr().out
        assert "bit-identical to single session: yes" in out
        assert "0 failed" in out
        assert "ShardedStats" in out
        assert "all shared-memory segments unlinked: yes" in out
        assert "ok" in out

    def test_autotune_matmul(self, capsys):
        run_example("autotune_matmul.py")
        out = capsys.readouterr().out
        assert "heuristic:" in out
        assert "tuned:" in out
        assert "source: cache" in out
        assert "ok" in out

    def test_trace_mlp(self, capsys, tmp_path, monkeypatch):
        from repro.observability import get_tracer

        path = tmp_path / "trace.json"
        monkeypatch.setattr(sys, "argv", ["trace_mlp.py", str(path)])
        try:
            run_example("trace_mlp.py")
        finally:
            get_tracer().clear()
        out = capsys.readouterr().out
        assert "brgemm calls" in out
        assert "top passes" in out
        assert "brgemm reconciliation" in out
        assert "schema check: ok" in out
        assert path.exists()

    def test_executor_speedup(self, capsys):
        run_example("executor_speedup.py")
        out = capsys.readouterr().out
        assert "interpreter" in out
        assert "bit-identical" in out

    def test_all_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "dlrm_mlp_inference.py",
            "bert_attention.py",
            "custom_machine.py",
            "cnn_layer.py",
            "serving_mlp.py",
            "serving_batched.py",
            "autotune_matmul.py",
            "trace_mlp.py",
            "executor_speedup.py",
        } <= names
