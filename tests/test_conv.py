"""Tests for the conv2d extension (im2col + matmul lowering)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DType, GraphBuilder, compile_graph
from repro.errors import ShapeInferenceError
from repro.graph_ir import conv2d
from repro.graph_ir.conv import _ref_im2col
from repro.graph_ir.reference import evaluate_graph


def naive_conv(x, w, stride=(1, 1), padding=(0, 0)):
    """Direct convolution oracle, no im2col."""
    sh, sw = stride
    ph, pw = padding
    x = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
    n, h, wd, c = x.shape
    kh, kw, _, oc = w.shape
    oh = (h - kh) // sh + 1
    ow = (wd - kw) // sw + 1
    out = np.zeros((n, oh, ow, oc), dtype=np.float32)
    for i in range(oh):
        for j in range(ow):
            patch = x[:, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
            out[:, i, j, :] = np.tensordot(patch, w, axes=([1, 2, 3], [0, 1, 2]))
    return out


class TestIm2col:
    def test_reference_matches_patch_extraction(self):
        x = np.arange(2 * 5 * 5 * 3, dtype=np.float32).reshape(2, 5, 5, 3)
        out = _ref_im2col([x], {"kernel": (3, 3)})[0]
        assert out.shape == (2, 3, 3, 27)
        np.testing.assert_array_equal(
            out[0, 0, 0], x[0, 0:3, 0:3, :].reshape(-1)
        )

    def test_stride_and_padding(self):
        x = np.random.rand(1, 6, 6, 2).astype(np.float32)
        out = _ref_im2col(
            [x], {"kernel": (3, 3), "stride": (2, 2), "padding": (1, 1)}
        )[0]
        assert out.shape == (1, 3, 3, 18)

    def test_invalid_geometry(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (1, 2, 2, 3))
        with pytest.raises(ShapeInferenceError):
            b.op("im2col", [x], {"kernel": (5, 5)})


class TestConv2dOp:
    def test_shape_inference(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 8, 8, 4))
        w = b.input("w", DType.f32, (3, 3, 4, 16))
        y = conv2d(b, x, w, padding=(1, 1))
        assert y.shape == (2, 8, 8, 16)

    def test_weight_shape_checked(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 8, 8, 4))
        w = b.input("w", DType.f32, (3, 3, 5, 16))  # wrong channels
        with pytest.raises(ShapeInferenceError, match="conv weight"):
            conv2d(b, x, w)

    def test_reference_matches_naive(self):
        rng = np.random.RandomState(0)
        x = rng.randn(2, 8, 8, 4).astype(np.float32)
        w = rng.randn(3, 3, 4, 8).astype(np.float32)
        b = GraphBuilder()
        xt = b.input("x", DType.f32, x.shape)
        wt = b.input("w", DType.f32, w.shape)
        y = conv2d(b, xt, wt, padding=(1, 1))
        b.output(y)
        out = list(evaluate_graph(b.finish(), {"x": x, "w": w}).values())[0]
        np.testing.assert_allclose(
            out, naive_conv(x, w, padding=(1, 1)), rtol=1e-4, atol=1e-4
        )


class TestCompiledConv:
    def _build(self, with_epilogue=True):
        b = GraphBuilder("cnn")
        x = b.input("x", DType.f32, (2, 12, 12, 8))
        w = b.constant("w", dtype=DType.f32, shape=(3, 3, 8, 16))
        y = conv2d(b, x, w, padding=(1, 1))
        if with_epilogue:
            bias = b.constant("bias", dtype=DType.f32, shape=(16,))
            y = b.relu(b.bias_add(y, bias))
        b.output(y)
        return b.finish()

    def test_compiled_matches_naive(self):
        rng = np.random.RandomState(1)
        inputs = {
            "x": rng.randn(2, 12, 12, 8).astype(np.float32),
            "w": (rng.randn(3, 3, 8, 16) * 0.1).astype(np.float32),
            "bias": rng.randn(16).astype(np.float32),
        }
        partition = compile_graph(self._build())
        out = list(partition.execute(inputs).values())[0]
        expected = np.maximum(
            naive_conv(inputs["x"], inputs["w"], padding=(1, 1))
            + inputs["bias"],
            0,
        )
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)

    def test_epilogue_fuses_into_matmul(self):
        """Reshape sinking lets bias+relu fuse into the im2col matmul."""
        partition = compile_graph(self._build())
        fusion_logs = [
            m for m in partition.lowered.ctx.log if "absorbed" in m
        ]
        assert any("add" in m and "relu" in m for m in fusion_logs)

    def test_kernel_reshape_cached_in_init(self):
        partition = compile_graph(self._build())
        assert partition.lowered.init_module is not None

    def test_strided_conv(self):
        b = GraphBuilder("s")
        x = b.input("x", DType.f32, (1, 8, 8, 4))
        w = b.constant("w", dtype=DType.f32, shape=(2, 2, 4, 8))
        b.output(conv2d(b, x, w, stride=(2, 2)))
        rng = np.random.RandomState(2)
        inputs = {
            "x": rng.randn(1, 8, 8, 4).astype(np.float32),
            "w": rng.randn(2, 2, 4, 8).astype(np.float32),
        }
        partition = compile_graph(b.finish())
        out = list(partition.execute(inputs).values())[0]
        np.testing.assert_allclose(
            out,
            naive_conv(inputs["x"], inputs["w"], stride=(2, 2)),
            rtol=1e-4,
            atol=1e-4,
        )

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),  # kernel
        st.integers(min_value=1, max_value=2),  # stride
        st.integers(min_value=0, max_value=1),  # padding
    )
    def test_compiled_conv_property(self, k, s, p):
        """Compiled conv == naive conv for any geometry."""
        rng = np.random.RandomState(k * 10 + s * 3 + p)
        x = rng.randn(1, 7, 7, 3).astype(np.float32)
        w = rng.randn(k, k, 3, 4).astype(np.float32)
        b = GraphBuilder("g")
        xt = b.input("x", DType.f32, x.shape)
        wt = b.constant("w", dtype=DType.f32, shape=w.shape)
        b.output(conv2d(b, xt, wt, stride=(s, s), padding=(p, p)))
        partition = compile_graph(b.finish())
        out = list(partition.execute({"x": x, "w": w}).values())[0]
        np.testing.assert_allclose(
            out,
            naive_conv(x, w, stride=(s, s), padding=(p, p)),
            rtol=1e-3,
            atol=1e-3,
        )
