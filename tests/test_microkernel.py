"""Tests for the batch-reduce GEMM microkernel and the machine model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.errors import ExecutionError
from repro.microkernel import (
    XEON_8358,
    CacheLevel,
    MachineModel,
    batch_reduce_gemm,
    brgemm_flops,
)


class TestBrgemm:
    def test_accumulates(self):
        a = np.random.rand(2, 4, 8).astype(np.float32)
        b = np.random.rand(2, 6, 8).astype(np.float32)
        c = np.ones((4, 6), dtype=np.float32)
        batch_reduce_gemm(c, a, b)
        expected = 1.0 + sum(a[i] @ b[i].T for i in range(2))
        np.testing.assert_allclose(c, expected, rtol=1e-5)

    def test_initialize_overwrites(self):
        a = np.random.rand(1, 4, 8).astype(np.float32)
        b = np.random.rand(1, 6, 8).astype(np.float32)
        c = np.full((4, 6), 100.0, dtype=np.float32)
        batch_reduce_gemm(c, a, b, initialize=True)
        np.testing.assert_allclose(c, a[0] @ b[0].T, rtol=1e-5)

    def test_plain_b_layout(self):
        a = np.random.rand(2, 4, 8).astype(np.float32)
        b = np.random.rand(2, 8, 6).astype(np.float32)
        c = np.zeros((4, 6), dtype=np.float32)
        batch_reduce_gemm(c, a, b, b_transposed=False)
        expected = sum(a[i] @ b[i] for i in range(2))
        np.testing.assert_allclose(c, expected, rtol=1e-5)

    def test_int8_semantics(self):
        a = np.random.randint(0, 256, (3, 4, 8)).astype(np.uint8)
        b = np.random.randint(-128, 128, (3, 6, 8)).astype(np.int8)
        c = np.zeros((4, 6), dtype=np.int32)
        batch_reduce_gemm(c, a, b)
        expected = sum(
            a[i].astype(np.int32) @ b[i].astype(np.int32).T for i in range(3)
        )
        np.testing.assert_array_equal(c, expected)

    def test_shape_errors(self):
        with pytest.raises(ExecutionError, match="3-D"):
            batch_reduce_gemm(
                np.zeros((4, 4), np.float32),
                np.zeros((4, 4), np.float32),
                np.zeros((1, 4, 4), np.float32),
            )
        with pytest.raises(ExecutionError, match="batch mismatch"):
            batch_reduce_gemm(
                np.zeros((4, 4), np.float32),
                np.zeros((2, 4, 4), np.float32),
                np.zeros((3, 4, 4), np.float32),
            )
        with pytest.raises(ExecutionError, match="K mismatch"):
            batch_reduce_gemm(
                np.zeros((4, 4), np.float32),
                np.zeros((1, 4, 8), np.float32),
                np.zeros((1, 4, 4), np.float32),
            )
        with pytest.raises(ExecutionError, match="accumulator shape"):
            batch_reduce_gemm(
                np.zeros((5, 4), np.float32),
                np.zeros((1, 4, 8), np.float32),
                np.zeros((1, 4, 8), np.float32),
            )

    def test_dtype_errors(self):
        with pytest.raises(ExecutionError, match="int32 accumulator"):
            batch_reduce_gemm(
                np.zeros((4, 4), np.float32),
                np.zeros((1, 4, 8), np.int8),
                np.zeros((1, 4, 8), np.int8),
            )
        with pytest.raises(ExecutionError, match="float32 accumulator"):
            batch_reduce_gemm(
                np.zeros((4, 4), np.int32),
                np.zeros((1, 4, 8), np.float32),
                np.zeros((1, 4, 8), np.float32),
            )

    def test_flops(self):
        assert brgemm_flops(16, 32, 64, 4) == 2 * 16 * 32 * 64 * 4

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),  # batch
        st.integers(min_value=1, max_value=8),  # mb
        st.integers(min_value=1, max_value=8),  # nb
        st.integers(min_value=1, max_value=8),  # kb
        st.booleans(),
        st.booleans(),
    )
    def test_matches_einsum_oracle(self, bs, mb, nb, kb, transposed, init):
        """brgemm == the einsum definition for any block geometry."""
        rng = np.random.RandomState(bs * 1000 + mb * 100 + nb * 10 + kb)
        a = rng.rand(bs, mb, kb).astype(np.float32)
        if transposed:
            b = rng.rand(bs, nb, kb).astype(np.float32)
            expected = np.einsum("bmk,bnk->mn", a, b)
        else:
            b = rng.rand(bs, kb, nb).astype(np.float32)
            expected = np.einsum("bmk,bkn->mn", a, b)
        c = rng.rand(mb, nb).astype(np.float32)
        if not init:
            expected = expected + c
        batch_reduce_gemm(c, a, b, b_transposed=transposed, initialize=init)
        np.testing.assert_allclose(c, expected, rtol=1e-4, atol=1e-5)


class TestMachineModel:
    def test_xeon_parameters(self):
        assert XEON_8358.num_cores == 32
        assert XEON_8358.vector_lanes(DType.f32) == 16
        assert XEON_8358.vector_lanes(DType.s8) == 64
        assert XEON_8358.flops_per_cycle[DType.s8] == (
            4 * XEON_8358.flops_per_cycle[DType.f32]
        )

    def test_cache_lookup(self):
        assert XEON_8358.cache("L1").size_bytes == 48 * 1024
        assert XEON_8358.l1.name == "L1"
        assert XEON_8358.dram.name == "DRAM"
        with pytest.raises(KeyError):
            XEON_8358.cache("L9")

    def test_peak_flops(self):
        assert XEON_8358.peak_flops(DType.f32) == pytest.approx(
            64 * 32 * 2.6e9
        )

    def test_cycles_to_seconds(self):
        assert XEON_8358.cycles_to_seconds(2.6e9) == pytest.approx(1.0)

    def test_custom_machine(self):
        tiny = MachineModel(
            name="tiny",
            num_cores=2,
            frequency_hz=1e9,
            flops_per_cycle={DType.f32: 8.0, DType.s8: 32.0,
                             DType.u8: 32.0, DType.bf16: 16.0},
            vector_bytes=32,
            num_vector_registers=16,
            caches=(
                CacheLevel("L1", 32 * 1024, 64.0),
                CacheLevel("L2", 512 * 1024, 32.0),
                CacheLevel("DRAM", 1 << 50, 4.0, shared=True),
            ),
            barrier_cycles=1000.0,
            api_call_cycles=500.0,
        )
        assert tiny.peak_flops(DType.f32) == pytest.approx(16e9)
        assert tiny.caches[-1].shared
