"""Failure-injection tests: the compiler rejects malformed inputs loudly."""

import numpy as np
import pytest

from repro import CompilerOptions, DType, GraphBuilder, compile_graph
from repro.dtypes import DType as DT
from repro.errors import (
    DataTypeError,
    GraphCompilerError,
    GraphValidationError,
    ShapeInferenceError,
    UnsupportedOpError,
)
from repro.graph_ir import Graph, LogicalTensor, Op


class TestGraphRejection:
    def test_cyclic_graph(self):
        graph = Graph("cycle")
        t1 = LogicalTensor(dtype=DType.f32, shape=(4,), name="t1")
        t2 = LogicalTensor(dtype=DType.f32, shape=(4,), name="t2")
        graph.add_op(Op(kind="relu", inputs=[t2], outputs=[t1]))
        graph.add_op(Op(kind="relu", inputs=[t1], outputs=[t2]))
        graph.mark_output(t1)
        with pytest.raises(GraphValidationError):
            compile_graph(graph)

    def test_unknown_op_kind(self):
        graph = Graph("bad")
        x = LogicalTensor(dtype=DType.f32, shape=(4,), name="x")
        out = LogicalTensor(dtype=DType.f32, shape=(4,), name="out")
        graph.add_input(x)
        graph.add_op(Op(kind="telepathy", inputs=[x], outputs=[out]))
        graph.mark_output(out)
        with pytest.raises(UnsupportedOpError):
            compile_graph(graph)

    def test_builder_rejects_bad_shapes_before_compile(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 8))
        w = b.input("w", DType.f32, (9, 4))
        with pytest.raises(ShapeInferenceError):
            b.matmul(x, w)

    def test_builder_rejects_mixed_dtypes(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        y = b.input("y", DType.s32, (4,))
        with pytest.raises(DataTypeError):
            b.add(x, y)

    def test_all_public_errors_share_base(self):
        from repro import errors

        for name in (
            "GraphValidationError",
            "ShapeInferenceError",
            "DataTypeError",
            "UnsupportedOpError",
            "LoweringError",
            "TensorIRError",
            "ExecutionError",
            "LayoutError",
            "HeuristicError",
        ):
            assert issubclass(
                getattr(errors, name), GraphCompilerError
            ), name


class TestBf16:
    def test_bf16_matmul_compiles_and_runs(self):
        """bf16 inputs (stored as f32, priced as 2 bytes) flow through."""
        b = GraphBuilder("bf16")
        x = b.input("x", DT.bf16, (32, 64))
        w = b.constant("w", dtype=DT.bf16, shape=(64, 32))
        y = b.matmul(x, w)
        assert y.dtype == DT.f32  # accumulates in f32
        b.output(b.relu(y))
        partition = compile_graph(b.finish())
        rng = np.random.RandomState(0)
        out = partition.execute(
            {
                "x": rng.randn(32, 64).astype(np.float32),
                "w": rng.randn(64, 32).astype(np.float32),
            }
        )
        assert np.isfinite(list(out.values())[0]).all()


class TestGraphOfOnlyEltwise:
    def test_no_matmul_graph_compiles(self):
        """Graphs without any tunable op still lower (standalone ops)."""
        b = GraphBuilder("elt")
        x = b.input("x", DType.f32, (16, 16))
        b.output(b.tanh(b.relu(x)))
        partition = compile_graph(b.finish())
        data = np.random.RandomState(1).randn(16, 16).astype(np.float32)
        out = list(partition.execute({"x": data}).values())[0]
        np.testing.assert_allclose(
            out, np.tanh(np.maximum(data, 0)), rtol=1e-6
        )

    def test_identity_like_graph(self):
        b = GraphBuilder("id")
        x = b.input("x", DType.f32, (8,))
        b.output(b.relu(x))
        partition = compile_graph(b.finish())
        out = list(
            partition.execute({"x": np.full(8, -1.0, np.float32)}).values()
        )[0]
        np.testing.assert_array_equal(out, np.zeros(8))
