"""Integration: compile + execute an MLP with tracing on, end to end.

Satellite 4 of the observability issue: the trace must contain one span
per default-pipeline Graph IR pass, spans for the Tensor IR passes, and a
microkernel span per brgemm invocation whose count matches
``ExecutionStats.brgemm_calls`` and the ``runtime.brgemm_calls`` metric.
"""

import numpy as np
import pytest

from repro import DType, GraphBuilder, compile_graph
from repro.graph_ir.passes.pass_manager import default_pipeline
from repro.observability import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    validate_chrome_trace,
)
from repro.observability.export import chrome_trace
from repro.observability.metrics import set_registry
from repro.observability.tracer import set_tracer


def mlp_graph(batch=64, dims=(256, 128, 64)):
    b = GraphBuilder("obs_mlp")
    x = b.input("x", DType.f32, (batch, dims[0]))
    t = x
    for i in range(len(dims) - 1):
        w = b.constant(f"w{i}", dtype=DType.f32, shape=(dims[i], dims[i + 1]))
        t = b.relu(b.matmul(t, w))
    b.output(t)
    return b.finish()


def mlp_feed(batch=64, dims=(256, 128, 64), seed=0):
    rng = np.random.RandomState(seed)
    feed = {"x": rng.randn(batch, dims[0]).astype(np.float32)}
    for i in range(len(dims) - 1):
        feed[f"w{i}"] = (
            rng.randn(dims[i], dims[i + 1]) * 0.1
        ).astype(np.float32)
    return feed


@pytest.fixture
def observed():
    """A private enabled tracer + registry installed as the globals."""
    old_tracer, old_registry = get_tracer(), get_registry()
    tracer = set_tracer(Tracer(enabled=True))
    registry = set_registry(MetricsRegistry())
    try:
        yield tracer, registry
    finally:
        set_tracer(old_tracer)
        set_registry(old_registry)


class TestCompileSpans:
    def test_span_per_default_pipeline_pass(self, observed):
        tracer, _ = observed
        compile_graph(mlp_graph())
        pass_spans = {
            r.name for r in tracer.records() if r.category == "graph_pass"
        }
        expected = {f"pass:{p.name}" for p in default_pipeline()}
        assert expected <= pass_spans, expected - pass_spans

    def test_tir_pass_and_stage_spans(self, observed):
        tracer, _ = observed
        compile_graph(mlp_graph())
        tir_spans = {
            r.name for r in tracer.records() if r.category == "tir_pass"
        }
        for name in ("simplify", "loop_merge", "tensor_shrink", "buffer_reuse"):
            assert f"tir_pass:{name}" in tir_spans, name
        stage_spans = {
            r.name for r in tracer.records() if r.category == "stage"
        }
        assert "compile:obs_mlp" in stage_spans
        assert "stage:graph_passes" in stage_spans
        assert "stage:lowering" in stage_spans
        assert "stage:tensor_ir" in stage_spans

    def test_pass_spans_carry_op_counts(self, observed):
        tracer, _ = observed
        compile_graph(mlp_graph())
        for record in tracer.records():
            if record.category != "graph_pass":
                continue
            for key in ("ops_before", "ops_after", "nodes_before", "nodes_after"):
                assert key in record.attrs, (record.name, key)

    def test_compile_metrics(self, observed):
        _, registry = observed
        compile_graph(mlp_graph())
        assert registry.value("compile.count") == 1
        assert registry.histogram("compile.seconds").count == 1
        # Most default-pipeline passes leave this small MLP unchanged, so
        # validation must have been skipped at least once (satellite 2).
        assert registry.value("compile.validation_skipped") > 0


class TestExecuteSpans:
    def test_brgemm_spans_match_stats_and_metric(self, observed):
        tracer, registry = observed
        partition = compile_graph(mlp_graph())
        out, stats = partition.execute_with_stats(mlp_feed())
        assert out
        assert stats.brgemm_calls > 0
        brgemm_spans = [
            r for r in tracer.records() if r.category == "microkernel"
        ]
        assert len(brgemm_spans) == stats.brgemm_calls
        assert registry.value("runtime.brgemm_calls") == stats.brgemm_calls
        assert registry.value("runtime.executions") == 1

    def test_brgemm_spans_reconcile_modeled_vs_measured(self, observed):
        tracer, _ = observed
        partition = compile_graph(mlp_graph())
        partition.execute(mlp_feed())
        brgemm = [r for r in tracer.records() if r.category == "microkernel"]
        assert brgemm
        for record in brgemm:
            assert "blocks" in record.attrs
            assert record.attrs["measured_us"] >= 0
            # The default machine model covers f32, so modeled cycles from
            # the cost descriptor must be present and positive.
            assert record.attrs["modeled_cycles"] > 0
            assert record.attrs["measured_cycles"] >= 0

    def test_last_stats_reassigned_every_call(self, observed):
        partition = compile_graph(mlp_graph())
        assert partition.last_stats is None
        partition.execute(mlp_feed())
        first = partition.last_stats
        assert first is not None
        partition.execute(mlp_feed())
        second = partition.last_stats
        assert second is not None and second is not first
        assert second.brgemm_calls == first.brgemm_calls

    def test_execution_stats_to_dict(self, observed):
        partition = compile_graph(mlp_graph())
        _, stats = partition.execute_with_stats(mlp_feed())
        d = stats.to_dict()
        assert d["brgemm_calls"] == stats.brgemm_calls
        assert set(d) == {
            "brgemm_calls",
            "compute_stmts",
            "pack_stmts",
            "barriers",
            "parallel_loops",
            "function_calls",
            "peak_temp_bytes",
        }

    def test_runtime_spans_present(self, observed):
        tracer, _ = observed
        partition = compile_graph(mlp_graph())
        partition.execute(mlp_feed())
        runtime = [r for r in tracer.records() if r.category == "runtime"]
        names = {r.name for r in runtime}
        assert "execute:obs_mlp" in names
        assert any(n.startswith("pack") for n in names)
        assert any(n.startswith("alloc:") for n in names)


class TestTraceDocument:
    def test_end_to_end_document_validates(self, observed):
        tracer, registry = observed
        partition = compile_graph(mlp_graph())
        partition.execute(mlp_feed())
        document = chrome_trace(tracer, registry)
        assert validate_chrome_trace(document) == []
        names = {e["name"] for e in document["traceEvents"]}
        assert "compile:obs_mlp" in names
        assert "brgemm" in names


class TestDisabledOverhead:
    def test_disabled_records_nothing(self, observed):
        tracer, registry = observed
        tracer.enabled = False
        partition = compile_graph(mlp_graph())
        partition.execute(mlp_feed())
        assert len(tracer) == 0
        # Metrics still publish (they are cheap, always-on counters).
        assert registry.value("compile.count") == 1
