"""End-to-end compilation tests: compile_graph vs the reference evaluator.

These are the project's strongest correctness guarantees: whole graphs
(MLPs, MHA, quantized variants) go through every pass and template, execute
through the interpreter and must match op-by-op reference evaluation.
"""

import numpy as np
import pytest

from repro import CompilerOptions, DType, GraphBuilder, compile_graph
from repro.errors import ExecutionError
from repro.graph_ir.reference import evaluate_graph


def mlp_graph(batch, dims, name="mlp", dtype=DType.f32):
    b = GraphBuilder(name)
    x = b.input("x", dtype, (batch, dims[0]))
    t = x
    for i in range(len(dims) - 1):
        w = b.constant(f"w{i}", dtype=dtype, shape=(dims[i], dims[i + 1]))
        t = b.relu(b.matmul(t, w))
    b.output(t)
    return b.finish()


def mlp_weights(dims, seed=0):
    rng = np.random.RandomState(seed)
    return {
        f"w{i}": (rng.randn(dims[i], dims[i + 1]) * 0.1).astype(np.float32)
        for i in range(len(dims) - 1)
    }


def reference_mlp(batch, dims, weights, x):
    graph = mlp_graph(batch, dims)
    for name, data in weights.items():
        tensor = next(t for t in graph.inputs if t.name == name)
        graph.bind_constant(tensor, data)
    return list(evaluate_graph(graph, {"x": x}).values())[0]


class TestMlpCompilation:
    @pytest.mark.parametrize("batch", [32, 64])
    def test_mlp1_shapes(self, batch):
        """The MLP_1 workload shape (13x512x256x128) end to end."""
        dims = [13, 512, 256, 128]
        weights = mlp_weights(dims)
        x = np.random.RandomState(1).randn(batch, 13).astype(np.float32)
        expected = reference_mlp(batch, dims, weights, x)
        partition = compile_graph(mlp_graph(batch, dims))
        out = partition.execute({"x": x, **weights})
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-4
        )

    def test_mlp2_shapes_small(self):
        """MLP_2-style: k=479 entry and n=1 exit layers (scaled down)."""
        dims = [479, 128, 64, 1]
        weights = mlp_weights(dims)
        x = np.random.RandomState(2).randn(32, 479).astype(np.float32)
        expected = reference_mlp(32, dims, weights, x)
        partition = compile_graph(mlp_graph(32, dims))
        out = partition.execute({"x": x, **weights})
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-4
        )

    def test_no_coarse_fusion_same_result(self):
        dims = [64, 128, 64]
        weights = mlp_weights(dims)
        x = np.random.RandomState(3).randn(32, 64).astype(np.float32)
        expected = reference_mlp(32, dims, weights, x)
        partition = compile_graph(
            mlp_graph(32, dims), options=CompilerOptions.no_coarse_fusion()
        )
        out = partition.execute({"x": x, **weights})
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-4
        )

    def test_coarse_fusion_merges_loops(self):
        dims = [128, 128, 128, 128]
        partition = compile_graph(mlp_graph(256, dims))
        assert any(
            "loop_merge: merged groups [[" in m
            and m.count("f") >= 2
            for m in partition.lowered.ctx.log
        )

    def test_constant_cache_used_on_second_run(self):
        dims = [32, 64]
        weights = mlp_weights(dims)
        x = np.random.RandomState(4).randn(16, 32).astype(np.float32)
        partition = compile_graph(mlp_graph(16, dims))
        first = partition.execute({"x": x, **weights})
        # Second run without weights must work (cached).
        second = partition.execute({"x": x})
        np.testing.assert_array_equal(
            list(first.values())[0], list(second.values())[0]
        )

    def test_missing_weight_on_first_run_raises(self):
        partition = compile_graph(mlp_graph(16, [32, 64]))
        with pytest.raises(ExecutionError, match="missing input"):
            partition.execute(
                {"x": np.zeros((16, 32), dtype=np.float32)}
            )

    def test_gelu_mlp(self):
        def build():
            b = GraphBuilder("gelu_mlp")
            x = b.input("x", DType.f32, (32, 64))
            w = b.constant("w", dtype=DType.f32, shape=(64, 96))
            b.output(b.gelu(b.matmul(x, w)))
            return b.finish()

        w = (np.random.RandomState(5).randn(64, 96) * 0.1).astype(np.float32)
        x = np.random.RandomState(6).randn(32, 64).astype(np.float32)
        ref_graph = build()
        tensor = next(t for t in ref_graph.inputs if t.name == "w")
        ref_graph.bind_constant(tensor, w)
        expected = list(evaluate_graph(ref_graph, {"x": x}).values())[0]
        partition = compile_graph(build())
        out = partition.execute({"x": x, "w": w})
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-5
        )

    def test_bias_mlp(self):
        def build():
            b = GraphBuilder("bias_mlp")
            x = b.input("x", DType.f32, (32, 64))
            w = b.constant("w", dtype=DType.f32, shape=(64, 96))
            bias = b.constant("bias", dtype=DType.f32, shape=(96,))
            b.output(b.relu(b.bias_add(b.matmul(x, w), bias)))
            return b.finish()

        rng = np.random.RandomState(7)
        w = (rng.randn(64, 96) * 0.1).astype(np.float32)
        bias = rng.randn(96).astype(np.float32)
        x = rng.randn(32, 64).astype(np.float32)
        partition = compile_graph(build())
        out = partition.execute({"x": x, "w": w, "bias": bias})
        expected = np.maximum(x @ w + bias, 0)
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-5
        )


def mha_graph(batch, heads, seq, head_dim, name="mha"):
    b = GraphBuilder(name)
    q = b.input("q", DType.f32, (batch, heads, seq, head_dim))
    k = b.input("k", DType.f32, (batch, heads, seq, head_dim))
    v = b.input("v", DType.f32, (batch, heads, seq, head_dim))
    mask = b.input("mask", DType.f32, (batch, 1, 1, seq))
    s = b.matmul(q, k, transpose_b=True)
    s = b.div(s, b.scalar("scale", float(np.sqrt(head_dim))))
    s = b.add(s, mask)
    p = b.softmax(s)
    b.output(b.matmul(p, v))
    return b.finish()


class TestMhaCompilation:
    def test_attention_matches_reference(self):
        B, H, S, D = 2, 4, 32, 16
        rng = np.random.RandomState(8)
        inputs = {
            "q": rng.randn(B, H, S, D).astype(np.float32),
            "k": rng.randn(B, H, S, D).astype(np.float32),
            "v": rng.randn(B, H, S, D).astype(np.float32),
            "mask": rng.randn(B, 1, 1, S).astype(np.float32),
        }
        expected = list(
            evaluate_graph(mha_graph(B, H, S, D), inputs).values()
        )[0]
        partition = compile_graph(mha_graph(B, H, S, D))
        out = partition.execute(inputs)
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-5
        )

    def test_softmax_fuses_into_batch_matmul(self):
        partition = compile_graph(mha_graph(2, 2, 16, 16))
        fusion_logs = [
            m for m in partition.lowered.ctx.log if "absorbed" in m
        ]
        assert any("reduce_max" in m and "exp" in m for m in fusion_logs)

    def test_both_matmuls_coarse_merged(self):
        partition = compile_graph(mha_graph(2, 2, 16, 16))
        assert any(
            "coarse_fusion" in m for m in partition.lowered.ctx.log
        )

    def test_attention_rows_sum_to_one_internally(self):
        """Feeding V = identity recovers the attention probabilities."""
        B, H, S, D = 1, 1, 16, 16
        rng = np.random.RandomState(9)
        inputs = {
            "q": rng.randn(B, H, S, D).astype(np.float32),
            "k": rng.randn(B, H, S, D).astype(np.float32),
            "v": np.broadcast_to(
                np.eye(S, D, dtype=np.float32), (B, H, S, D)
            ).copy(),
            "mask": np.zeros((B, 1, 1, S), dtype=np.float32),
        }
        partition = compile_graph(mha_graph(B, H, S, D))
        out = list(partition.execute(inputs).values())[0]
        np.testing.assert_allclose(
            out.sum(axis=-1), np.ones((B, H, S)), rtol=1e-5
        )


def quantized_mlp(batch, dims, name="qmlp"):
    b = GraphBuilder(name)
    xq = b.input("x", DType.u8, (batch, dims[0]))
    t = b.dequantize(xq, scale=0.05, zero_point=10)
    for i in range(len(dims) - 1):
        wq = b.constant(f"w{i}", dtype=DType.s8, shape=(dims[i], dims[i + 1]))
        w = b.dequantize(wq, scale=0.05)
        t = b.relu(b.matmul(t, w))
        if i < len(dims) - 2:
            q = b.quantize(t, scale=0.2, zero_point=5, dtype=DType.u8)
            t = b.dequantize(q, scale=0.2, zero_point=5)
    b.output(t)
    return b.finish()


class TestQuantizedCompilation:
    def _data(self, batch, dims, seed=10):
        rng = np.random.RandomState(seed)
        weights = {
            f"w{i}": rng.randint(-100, 100, (dims[i], dims[i + 1])).astype(
                np.int8
            )
            for i in range(len(dims) - 1)
        }
        x = rng.randint(0, 255, (batch, dims[0])).astype(np.uint8)
        return weights, x

    def test_quantized_mlp_matches_exact_oracle(self):
        """Compare against exact integer math (the compiled semantics).

        The fp32 op-by-op reference is unstable at requantization round
        boundaries, so the oracle follows the int8-rewrite math: exact
        int32 accumulation, f32 scaling, f32 requantization.
        """
        batch, dims = 32, [64, 128, 64]
        weights, x = self._data(batch, dims)
        partition = compile_graph(quantized_mlp(batch, dims))
        out = list(partition.execute({"x": x, **weights}).values())[0]

        def layer(act, zp, w, ab_scale):
            # The rewrite: f32(int8 matmul) - zp * f32(colsum_k(W)), scaled.
            acc = (act.astype(np.int32) @ w.astype(np.int32)).astype(
                np.float32
            )
            comp = w.astype(np.int32).sum(axis=0).astype(np.float32)
            scale = np.float32(ab_scale)
            return (acc - np.float32(zp) * comp) * scale

        t1 = np.maximum(layer(x, 10, weights["w0"], 0.05 * 0.05), 0)
        q = np.clip(
            np.rint(t1 / np.float32(0.2)) + np.float32(5), 0, 255
        ).astype(np.uint8)
        expected = np.maximum(layer(q, 5, weights["w1"], 0.2 * 0.05), 0)
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-3)

    def test_int8_rewrite_exactness(self):
        """Against exact int32 math the compiled result is bit-faithful
        up to the final f32 scaling."""
        batch, dims = 16, [32, 48]
        weights, x = self._data(batch, dims, seed=11)
        partition = compile_graph(quantized_mlp(batch, dims))
        out = list(partition.execute({"x": x, **weights}).values())[0]
        w = weights["w0"].astype(np.int64)
        acc = (x.astype(np.int64) - 10) @ w  # subtract zero point exactly
        exact = np.maximum(
            acc.astype(np.float32) * np.float32(0.05) * np.float32(0.05), 0
        )
        np.testing.assert_allclose(out, exact, rtol=1e-6, atol=1e-4)

    def test_low_precision_pass_ran(self):
        partition = compile_graph(quantized_mlp(16, [32, 48]))
        assert any(
            "low_precision: rewrote" in m for m in partition.lowered.ctx.log
        )

    def test_compensation_cached_in_init(self):
        partition = compile_graph(quantized_mlp(16, [32, 48]))
        assert partition.lowered.init_module is not None
        assert len(partition.lowered.cached_tensors) >= 1

    def test_disable_low_precision_keeps_fp32(self):
        options = CompilerOptions(enable_low_precision=False)
        partition = compile_graph(quantized_mlp(16, [32, 48]), options=options)
        weights, x = self._data(16, [32, 48], seed=12)
        out = list(partition.execute({"x": x, **weights}).values())[0]
        graph = quantized_mlp(16, [32, 48])
        for name, data in weights.items():
            tensor = next(t for t in graph.inputs if t.name == name)
            graph.bind_constant(tensor, data)
        expected = list(evaluate_graph(graph, {"x": x}).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=0.5)


class TestAblations:
    def _check(self, options):
        dims = [64, 96, 32]
        weights = mlp_weights(dims, seed=13)
        x = np.random.RandomState(14).randn(32, 64).astype(np.float32)
        expected = reference_mlp(32, dims, weights, x)
        partition = compile_graph(mlp_graph(32, dims), options=options)
        out = partition.execute({"x": x, **weights})
        np.testing.assert_allclose(
            list(out.values())[0], expected, rtol=1e-4, atol=1e-4
        )
        return partition

    def test_no_tensor_shrink(self):
        self._check(CompilerOptions(enable_tensor_shrink=False))

    def test_no_buffer_reuse(self):
        p = self._check(CompilerOptions(enable_buffer_reuse=False))
        assert p.arena_size == 0

    def test_buffer_reuse_assigns_arena(self):
        p = self._check(CompilerOptions())
        # Three layers -> at least one intermediate placed in the arena.
        assert p.arena_size > 0

    def test_no_constant_cache(self):
        p = self._check(CompilerOptions(enable_constant_cache=False))
        assert p.lowered.init_module is None

    def test_everything_off(self):
        self._check(
            CompilerOptions(
                enable_low_precision=False,
                enable_coarse_grain_fusion=False,
                enable_tensor_shrink=False,
                enable_buffer_reuse=False,
                enable_constant_cache=False,
            )
        )
