"""Compile-and-verify the full Table 1 workload matrix.

Every (workload, dtype) cell compiles through the complete pipeline and
executes through the interpreter; fp32 results check against the op-by-op
reference, int8 results against the baseline executor (both sides compute
the identical low-precision rewrite, so they agree tightly).
"""

import numpy as np
import pytest

from repro import DType, XEON_8358, compile_graph
from repro.baseline import BaselineExecutor
from repro.graph_ir.reference import evaluate_graph
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)

MLP_CASES = [
    ("MLP_1", DType.f32, 32),
    ("MLP_1", DType.s8, 32),
    ("MLP_2", DType.f32, 32),
    ("MLP_2", DType.s8, 32),
]

MHA_CASES = [
    ("MHA_1", DType.f32, 4),
    ("MHA_1", DType.s8, 4),
    ("MHA_2", DType.f32, 4),
    ("MHA_2", DType.s8, 4),
    ("MHA_3", DType.f32, 1),
    ("MHA_3", DType.s8, 1),
    ("MHA_4", DType.f32, 1),
    ("MHA_4", DType.s8, 1),
]


@pytest.mark.parametrize(
    "name,dtype,batch",
    MLP_CASES,
    ids=[f"{n}-{d.value}" for n, d, _ in MLP_CASES],
)
def test_mlp_matrix(name, dtype, batch):
    inputs = make_mlp_inputs(name, batch, dtype, seed=3)
    partition = compile_graph(build_mlp_graph(name, batch, dtype))
    out = list(partition.execute(inputs).values())[0]
    if dtype == DType.f32:
        expected_graph = build_mlp_graph(name, batch, dtype)
        expected = list(evaluate_graph(expected_graph, inputs).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-3)
    else:
        baseline = BaselineExecutor(
            build_mlp_graph(name, batch, dtype), XEON_8358
        )
        expected = list(baseline.execute(inputs).values())[0]
        # Both sides compute the identical int8 rewrite; differences can
        # only come from requantization round boundaries.
        denom = max(np.abs(expected).max(), 1.0)
        mismatch = np.abs(out - expected) / denom
        assert np.median(mismatch) < 1e-6
        assert (mismatch > 1e-2).mean() < 0.01


@pytest.mark.parametrize(
    "name,dtype,batch",
    MHA_CASES,
    ids=[f"{n}-{d.value}" for n, d, _ in MHA_CASES],
)
def test_mha_matrix(name, dtype, batch):
    inputs = make_mha_inputs(name, batch, dtype, seed=4)
    partition = compile_graph(build_mha_graph(name, batch, dtype))
    out = list(partition.execute(inputs).values())[0]
    if dtype == DType.f32:
        expected_graph = build_mha_graph(name, batch, dtype)
        expected = list(evaluate_graph(expected_graph, inputs).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)
    else:
        baseline = BaselineExecutor(
            build_mha_graph(name, batch, dtype), XEON_8358
        )
        expected = list(baseline.execute(inputs).values())[0]
        denom = max(np.abs(expected).max(), 1.0)
        mismatch = np.abs(out - expected) / denom
        assert np.median(mismatch) < 1e-5
        assert (mismatch > 2e-2).mean() < 0.01
