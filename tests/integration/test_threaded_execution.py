"""Threaded interpreter execution: parallel loops on a thread pool.

The generated parallel loops express real parallelism (disjoint slices per
iteration); with ``num_threads > 1`` the interpreter runs them on threads
— numpy kernels release the GIL — and results must match serial execution
bit for bit.
"""

import numpy as np
import pytest

from repro import DType, compile_graph
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)


def run_both(builder, inputs):
    serial = compile_graph(builder())
    serial_out = list(serial.execute(inputs).values())[0]
    threaded = compile_graph(builder())
    threaded.num_threads = 8
    threaded_out = list(threaded.execute(inputs).values())[0]
    return serial_out, threaded_out


class TestThreadedDeterminism:
    def test_mlp_fp32(self):
        inputs = make_mlp_inputs("MLP_1", 64, DType.f32)
        a, b = run_both(
            lambda: build_mlp_graph("MLP_1", 64, DType.f32), inputs
        )
        np.testing.assert_array_equal(a, b)

    def test_mlp_int8(self):
        inputs = make_mlp_inputs("MLP_1", 64, DType.s8)
        a, b = run_both(
            lambda: build_mlp_graph("MLP_1", 64, DType.s8), inputs
        )
        np.testing.assert_array_equal(a, b)

    def test_mha_fp32_with_fused_softmax(self):
        inputs = make_mha_inputs("MHA_1", 4, DType.f32)
        a, b = run_both(
            lambda: build_mha_graph("MHA_1", 4, DType.f32), inputs
        )
        np.testing.assert_array_equal(a, b)

    def test_mha_int8(self):
        inputs = make_mha_inputs("MHA_1", 4, DType.s8)
        a, b = run_both(
            lambda: build_mha_graph("MHA_1", 4, DType.s8), inputs
        )
        np.testing.assert_array_equal(a, b)

    def test_repeated_threaded_runs_stable(self):
        inputs = make_mlp_inputs("MLP_1", 32, DType.f32)
        partition = compile_graph(build_mlp_graph("MLP_1", 32, DType.f32))
        partition.num_threads = 4
        first = list(partition.execute(inputs).values())[0]
        for _ in range(3):
            again = list(partition.execute({"x": inputs["x"]}).values())[0]
            np.testing.assert_array_equal(first, again)

    def test_thread_local_scratch_isolated(self):
        """The shrunk anchor scratch must not leak across threads: with a
        batch of identical rows every output row must be identical."""
        from repro import GraphBuilder

        def build():
            b = GraphBuilder("iso")
            x = b.input("x", DType.f32, (64, 32))
            w = b.constant("w", dtype=DType.f32, shape=(32, 64))
            y = b.matmul(x, w)
            b.output(b.softmax(y))
            return b.finish()

        row = np.random.RandomState(0).randn(1, 32).astype(np.float32)
        x = np.repeat(row, 64, axis=0)
        w = np.random.RandomState(1).randn(32, 64).astype(np.float32)
        partition = compile_graph(build())
        partition.num_threads = 8
        out = list(partition.execute({"x": x, "w": w}).values())[0]
        np.testing.assert_array_equal(
            out, np.repeat(out[:1], 64, axis=0)
        )
