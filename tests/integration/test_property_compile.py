"""Property-based end-to-end compilation tests.

Random graphs — matmul followed by random element-wise chains, random
shapes, random epilogues — must compile and match the reference evaluator.
This is the broadest net over the whole pipeline: heuristics, layout
negotiation, fusion region growing, template lowering, Tensor IR passes
and the interpreter.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DType, GraphBuilder, compile_graph
from repro.graph_ir.reference import evaluate_graph

UNARY = ["relu", "tanh", "sigmoid", "abs", "neg"]
BINARY = ["add", "sub", "mul", "maximum"]


@st.composite
def chain_spec(draw):
    m = draw(st.sampled_from([1, 7, 16, 33, 64]))
    k = draw(st.sampled_from([5, 16, 48, 100]))
    n = draw(st.sampled_from([1, 9, 16, 64]))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("unary"), st.sampled_from(UNARY)),
                st.tuples(st.just("binary"), st.sampled_from(BINARY)),
            ),
            min_size=0,
            max_size=4,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return m, k, n, ops, seed


def build(m, k, n, ops, rng):
    b = GraphBuilder("prop")
    x = b.input("x", DType.f32, (m, k))
    w = b.constant("w", dtype=DType.f32, shape=(k, n))
    t = b.matmul(x, w)
    extra = {}
    for index, (kind, name) in enumerate(ops):
        if kind == "unary":
            t = b.op(name, [t])
        else:
            operand = b.input(f"e{index}", DType.f32, (n,))
            extra[f"e{index}"] = rng.randn(n).astype(np.float32)
            t = b.op(name, [t, operand])
    b.output(t)
    return b.finish(), extra


class TestRandomChains:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(chain_spec())
    def test_compiled_matches_reference(self, spec):
        m, k, n, ops, seed = spec
        rng = np.random.RandomState(seed % 100000)
        graph, extra = build(m, k, n, ops, rng)
        inputs = {
            "x": (rng.randn(m, k) * 0.5).astype(np.float32),
            "w": (rng.randn(k, n) * 0.5).astype(np.float32),
            **extra,
        }
        expected = list(evaluate_graph(graph, inputs).values())[0]
        graph2, extra2 = build(m, k, n, ops, np.random.RandomState(seed % 100000))
        partition = compile_graph(graph2)
        out = list(partition.execute(inputs).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-3)


class TestRandomMlps:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.sampled_from([3, 16, 33, 64, 100]), min_size=2, max_size=5
        ),
        st.sampled_from([1, 8, 32, 50]),
        st.integers(min_value=0, max_value=10000),
    )
    def test_random_mlp_dims(self, dims, batch, seed):
        rng = np.random.RandomState(seed)

        def make():
            b = GraphBuilder("rmlp")
            t = b.input("x", DType.f32, (batch, dims[0]))
            for i in range(len(dims) - 1):
                w = b.constant(
                    f"w{i}", dtype=DType.f32, shape=(dims[i], dims[i + 1])
                )
                t = b.relu(b.matmul(t, w))
            b.output(t)
            return b.finish()

        inputs = {"x": rng.randn(batch, dims[0]).astype(np.float32)}
        for i in range(len(dims) - 1):
            inputs[f"w{i}"] = (
                rng.randn(dims[i], dims[i + 1]) * 0.2
            ).astype(np.float32)
        expected = list(evaluate_graph(make(), inputs).values())[0]
        partition = compile_graph(make())
        out = list(partition.execute(inputs).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-3)
