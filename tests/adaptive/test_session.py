"""InferenceSession wiring: capture at compile, live drift → hot swap."""

import threading
import time

import numpy as np
import pytest

from repro.adaptive import AdaptiveConfig
from repro.service import InferenceSession
from repro.workloads import make_mlp_inputs

FAST_CONFIG = AdaptiveConfig(
    poll_interval_s=0.02,
    drift_threshold=1.3,
    window=2,
    min_executes=3,
    trial_requests=3,
    cooldown_polls=2,
    retune_budget=16,
    retune_repeats=1,
    win_margin=0.01,
)


def mlp_session(**kwargs):
    data = make_mlp_inputs("MLP_1", 32)
    weights = {k: v for k, v in data.items() if k.startswith("w")}
    session = InferenceSession.for_workload(
        "MLP_1", weights=weights, batch_buckets=[32], **kwargs
    )
    return session, {"x": data["x"]}


class TestWiring:
    def test_adaptive_is_off_by_default(self):
        session, feed = mlp_session()
        try:
            assert session.adaptive == "off"
            assert session.adaptive_manager is None
            session.run(feed)
            # Latency EWMA feeds the stats table even with adaptive off.
            (sig_stats,) = session.stats().signatures
            assert sig_stats.latency_samples == 1
            assert sig_stats.latency_ewma_seconds > 0
        finally:
            session.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            mlp_session(adaptive="sometimes")

    def test_compile_captures_tuning_problems(self):
        session, feed = mlp_session(
            adaptive="on", adaptive_config=FAST_CONFIG
        )
        try:
            assert session.adaptive == "on"
            assert session.adaptive_manager.running
            session.run(feed)
            (sig_stats,) = session.stats().signatures
            problems = session.tuning_problems(sig_stats.signature)
            # MLP_1 has three matmul layers to re-search.
            assert len(problems) >= 3
        finally:
            session.close()


class TestEndToEnd:
    def test_drift_detect_retune_swap(self):
        """The full loop against live traffic: inject drift, serve until
        the background retuner hot-swaps a challenger in, verify every
        response along the way and a clean shutdown after."""
        session, feed = mlp_session(
            adaptive="on", adaptive_config=FAST_CONFIG
        )
        try:
            manager = session.adaptive_manager
            reference = session.run(feed)
            for _ in range(10):
                session.run(feed)
            (sig_stats,) = session.stats().signatures
            signature = sig_stats.signature
            assert manager.inject_drift(signature, 0.02)
            deadline = time.monotonic() + 120
            while manager.swaps < 1 and time.monotonic() < deadline:
                out = session.run(feed)
                for name in reference:
                    np.testing.assert_allclose(
                        out[name], reference[name], rtol=2e-5, atol=2e-5
                    )
            assert manager.swaps >= 1, "no hot swap within the deadline"
            # The swapped-in partition serves the same numbers.
            out = session.run(feed)
            for name in reference:
                np.testing.assert_allclose(
                    out[name], reference[name], rtol=2e-5, atol=2e-5
                )
            assert session.stats().swaps >= 3  # inject, trial, promote
        finally:
            session.close()
        leftovers = [
            t.name
            for t in threading.enumerate()
            if t.name == "adaptive-retuner"
        ]
        assert not leftovers, leftovers
