"""A/B trial and drift-injection partition proxies."""

import time

import numpy as np
import pytest

from repro.adaptive import (
    ABTrialPartition,
    DegradedPartition,
    OutputAliasPartition,
)


class FakePartition:
    """Quacks just enough like a CompiledPartition for the proxies."""

    def __init__(self, value, fail=False, names=("out",)):
        self.value = value
        self.fail = fail
        self.closed = 0
        self.output_names = list(names)

    def execute(self, inputs):
        if self.fail:
            raise RuntimeError("challenger broken")
        return {name: self.value for name in self.output_names}

    def close(self):
        self.closed += 1


class TestABTrialPartition:
    def test_stride_routing(self):
        incumbent = FakePartition(np.zeros(2))
        challenger = FakePartition(np.ones(2))
        trial = ABTrialPartition(incumbent, challenger, stride=3)
        for _ in range(9):
            trial.execute({})
        result = trial.snapshot()
        assert result.challenger_samples == 3
        assert result.incumbent_samples == 6
        assert result.challenger_errors == 0

    def test_stride_must_split_traffic(self):
        with pytest.raises(ValueError, match="stride"):
            ABTrialPartition(FakePartition(0), FakePartition(1), stride=1)

    def test_challenger_error_falls_back_to_incumbent(self):
        incumbent = FakePartition(np.full(2, 7.0))
        challenger = FakePartition(np.ones(2), fail=True)
        trial = ABTrialPartition(incumbent, challenger, stride=2)
        outputs = [trial.execute({}) for _ in range(4)]
        # Every request succeeded and every output is the incumbent's.
        for out in outputs:
            np.testing.assert_array_equal(out["out"], incumbent.value)
        result = trial.snapshot()
        assert result.challenger_errors == 2
        assert result.challenger_samples == 0

    def test_snapshot_reports_means(self):
        incumbent = FakePartition(0)
        challenger = FakePartition(1)
        trial = ABTrialPartition(incumbent, challenger, stride=2)
        for _ in range(6):
            trial.execute({})
        result = trial.snapshot()
        assert result.challenger_seconds > 0
        assert result.incumbent_seconds > 0

    def test_close_spares_the_kept_arm(self):
        incumbent = FakePartition(0)
        challenger = FakePartition(1)
        trial = ABTrialPartition(incumbent, challenger, stride=2)
        trial.keep(challenger)
        trial.close()
        assert incumbent.closed == 1
        assert challenger.closed == 0

    def test_close_without_keep_closes_both(self):
        incumbent = FakePartition(0)
        challenger = FakePartition(1)
        ABTrialPartition(incumbent, challenger, stride=2).close()
        assert incumbent.closed == 1
        assert challenger.closed == 1


class TestOutputAliasPartition:
    def test_positional_rename(self):
        target = FakePartition(np.arange(3), names=("t112", "t113"))
        alias = OutputAliasPartition(target, ["t39", "t40"])
        out = alias.execute({})
        assert list(out) == ["t39", "t40"]
        np.testing.assert_array_equal(out["t39"], np.arange(3))
        assert alias.output_names == ["t39", "t40"]

    def test_arity_change_rejected(self):
        target = FakePartition(0, names=("a", "b"))
        with pytest.raises(ValueError, match="arity"):
            OutputAliasPartition(target, ["only_one"])

    def test_close_closes_target(self):
        target = FakePartition(0)
        OutputAliasPartition(target, ["x"]).close()
        assert target.closed == 1


class TestDegradedPartition:
    def test_injects_delay(self):
        target = FakePartition(np.ones(1))
        degraded = DegradedPartition(target, delay_seconds=0.02)
        start = time.perf_counter()
        out = degraded.execute({})
        assert time.perf_counter() - start >= 0.02
        np.testing.assert_array_equal(out["out"], target.value)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_seconds"):
            DegradedPartition(FakePartition(0), delay_seconds=-1.0)

    def test_close_closes_target(self):
        target = FakePartition(0)
        DegradedPartition(target, 0.0).close()
        assert target.closed == 1
