"""AdaptiveManager: the drift → retune → trial → swap state machine.

These tests drive the manager deterministically through its public
``step()`` (no background thread): drift evidence is fed through the
partition cache's latency EWMA, and the retuner's challenger build is
stubbed so each test controls exactly what the A/B trial compares.
"""

import dataclasses
import threading
import time

import numpy as np

from repro import DType, GraphBuilder, XEON_8358, compile_graph
from repro.adaptive import (
    ABTrialPartition,
    AdaptiveConfig,
    AdaptiveManager,
    DegradedPartition,
    SignatureState,
)
from repro.service import PartitionCache, graph_signature

CONFIG = AdaptiveConfig(
    poll_interval_s=0.01,
    drift_threshold=1.5,
    window=2,
    min_executes=4,
    trial_fraction=0.5,  # stride 2: every other request to the challenger
    trial_requests=3,
    win_margin=0.05,
    cooldown_polls=2,
    retune_budget=2,
    retune_repeats=1,
    max_retunes_per_signature=2,
)

_RNG = np.random.default_rng(0)
FEED = {
    "x": _RNG.standard_normal((8, 32)).astype(np.float32),
    "w": _RNG.standard_normal((32, 16)).astype(np.float32),
}


def tiny_graph():
    b = GraphBuilder("tiny")
    x = b.input("x", DType.f32, (8, 32))
    w = b.constant("w", dtype=DType.f32, shape=(32, 16))
    b.output(b.relu(b.matmul(x, w)))
    return b.finish()


class _Boom:
    """A challenger that raises under traffic (delegates everything else)."""

    def __init__(self, inner):
        self._inner = inner
        self.closed = 0

    def execute(self, inputs):
        raise RuntimeError("challenger broken")

    def close(self):
        self.closed += 1
        self._inner.close()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def make_serving():
    graph = tiny_graph()
    signature = graph_signature(graph)
    cache = PartitionCache()
    incumbent = cache.get_or_compile(
        signature, lambda: compile_graph(graph)
    )
    return cache, signature, incumbent


def make_manager(cache, challenger, config=CONFIG):
    manager = AdaptiveManager(
        cache,
        XEON_8358,
        config,
        problems_for=lambda sig: ["captured-problem"],
        compile_fresh_for=lambda sig: (lambda: None),
    )
    # The real retuner re-searches the tuning space and recompiles; here
    # the challenger is dictated so the trial outcome is deterministic.
    manager.retuner.build_challenger = (
        lambda sig, problems, fresh: challenger
    )
    return manager


def drive_to_trial(cache, signature, manager, calibrate_ms=0.1):
    """Calibrate, then feed a drifted EWMA until the trial is installed."""
    for _ in range(CONFIG.min_executes):
        cache.note_execute(signature, latency_seconds=calibrate_ms / 1e3)
    manager.step()  # registers the signature and calibrates the baseline
    for _ in range(CONFIG.window):
        cache.note_execute(
            signature, latency_seconds=100 * calibrate_ms / 1e3
        )
        manager.step()
    assert manager.state_of(signature) is SignatureState.TRIAL


def run_trial_traffic(cache, signature, requests=8):
    trial = cache.peek(signature)
    assert isinstance(trial, ABTrialPartition)
    for _ in range(requests):
        trial.execute(dict(FEED))
    return trial


class TestDecisionTable:
    def test_challenger_wins_and_is_hot_swapped(self):
        cache, signature, incumbent = make_serving()
        challenger = compile_graph(tiny_graph())
        manager = make_manager(cache, challenger)
        # Genuine degradation: the incumbent is 5ms/request slower, so
        # the challenger wins its trial on real measurements.
        assert manager.inject_drift(signature, 0.005)
        drive_to_trial(cache, signature, manager)
        assert signature in cache.pinned()
        run_trial_traffic(cache, signature)
        manager.step()  # judge: PROMOTE
        assert cache.peek(signature) is challenger
        assert manager.swaps == 1
        assert manager.state_of(signature) is SignatureState.COOLDOWN
        assert signature not in cache.pinned()
        report = manager.report()
        assert report["drift_detections"] == 1
        assert report["signatures"][signature]["retunes"] == 1
        # inject + trial install + promotion = three swaps on the record.
        (sig_stats,) = cache.stats().signatures
        assert sig_stats.swaps == 3
        # Cooldown elapses back to STABLE.
        manager.step()
        manager.step()
        assert manager.state_of(signature) is SignatureState.STABLE
        manager.close()

    def test_challenger_loses_and_incumbent_stays(self):
        cache, signature, incumbent = make_serving()
        challenger = DegradedPartition(compile_graph(tiny_graph()), 0.01)
        manager = make_manager(cache, challenger)
        drive_to_trial(cache, signature, manager)
        run_trial_traffic(cache, signature)
        manager.step()  # judge: REJECT
        assert cache.peek(signature) is incumbent
        assert manager.swaps == 0
        assert manager.state_of(signature) is SignatureState.COOLDOWN
        assert signature not in cache.pinned()
        manager.close()

    def test_challenger_error_quarantines_signature(self):
        cache, signature, incumbent = make_serving()
        challenger = _Boom(compile_graph(tiny_graph()))
        manager = make_manager(cache, challenger)
        drive_to_trial(cache, signature, manager)
        trial = cache.peek(signature)
        # Second request routes to the challenger, raises, and is
        # transparently re-served by the incumbent: no caller fails.
        outputs = [trial.execute(dict(FEED)) for _ in range(2)]
        assert all(out for out in outputs)
        manager.step()  # judge: QUARANTINE
        assert cache.peek(signature) is incumbent
        assert manager.swaps == 0
        assert manager.state_of(signature) is SignatureState.QUARANTINED
        assert challenger.closed == 1
        # Further drift on a quarantined signature is ignored for good.
        for _ in range(4):
            cache.note_execute(signature, latency_seconds=1.0)
            manager.step()
        assert manager.state_of(signature) is SignatureState.QUARANTINED
        assert cache.peek(signature) is incumbent
        manager.close()

    def test_retune_budget_quarantines(self):
        cache, signature, incumbent = make_serving()
        challenger = DegradedPartition(compile_graph(tiny_graph()), 0.01)
        config = dataclasses.replace(CONFIG, max_retunes_per_signature=1)
        manager = make_manager(cache, challenger, config=config)
        drive_to_trial(cache, signature, manager)
        run_trial_traffic(cache, signature)
        manager.step()  # REJECT, retune budget now exhausted
        manager.step()
        manager.step()  # cooldown over
        assert manager.state_of(signature) is SignatureState.STABLE
        # Recalibrate at the drifted level, then drift again.
        cache.note_execute(signature, latency_seconds=1e-3)
        manager.step()
        for _ in range(config.window):
            cache.note_execute(signature, latency_seconds=1.0)
            manager.step()
        assert manager.state_of(signature) is SignatureState.QUARANTINED
        assert cache.peek(signature) is incumbent
        manager.close()


class TestLifecycle:
    def test_close_resolves_open_trial_to_incumbent(self):
        cache, signature, incumbent = make_serving()
        challenger = compile_graph(tiny_graph())
        manager = make_manager(cache, challenger)
        drive_to_trial(cache, signature, manager)
        manager.close()  # mid-trial shutdown: a shutdown is not evidence
        assert cache.peek(signature) is incumbent
        assert manager.swaps == 0
        assert signature not in cache.pinned()

    def test_untuned_signature_backs_off_to_cooldown(self):
        cache, signature, _ = make_serving()
        manager = AdaptiveManager(
            cache,
            XEON_8358,
            CONFIG,
            problems_for=lambda sig: [],  # nothing captured to re-search
            compile_fresh_for=lambda sig: (lambda: None),
        )
        for _ in range(CONFIG.min_executes):
            cache.note_execute(signature, latency_seconds=1e-4)
        manager.step()
        for _ in range(CONFIG.window):
            cache.note_execute(signature, latency_seconds=1e-2)
            manager.step()
        assert manager.state_of(signature) is SignatureState.COOLDOWN
        assert not isinstance(cache.peek(signature), ABTrialPartition)
        manager.close()

    def test_foreign_signature_is_ignored(self):
        # Sharded workers share one cache between model sessions: a
        # manager must not adopt a signature its session can't recompile.
        cache, signature, _ = make_serving()
        manager = AdaptiveManager(
            cache,
            XEON_8358,
            CONFIG,
            problems_for=lambda sig: ["problem"],
            compile_fresh_for=lambda sig: None,  # not ours
        )
        for _ in range(CONFIG.min_executes):
            cache.note_execute(signature, latency_seconds=1e-3)
        manager.step()
        assert not manager.monitor.tracked(signature)
        assert manager.report()["signatures"] == {}
        manager.close()


class TestConcurrentSwap:
    def test_swap_under_concurrent_execute_is_lossless(self):
        """Eight serving threads never observe a torn swap: every
        response stays bit-identical while the resident partition is
        swapped back and forth under them."""
        graph = tiny_graph()
        signature = graph_signature(graph)
        cache = PartitionCache()
        # Two compiles of the same deterministic builder graph: identical
        # schedules, bit-identical results (output *names* differ across
        # recompiles — positional comparison, as OutputAliasPartition
        # formalizes for the serving path).
        first = cache.get_or_compile(signature, lambda: compile_graph(graph))
        second = compile_graph(tiny_graph())
        # Warm both outside the storm (first execute packs the weights,
        # as the serving layer's warmup does) and pin down bit-identity.
        reference = list(first.execute(dict(FEED)).values())
        for value, expected in zip(
            second.execute(dict(FEED)).values(), reference
        ):
            np.testing.assert_array_equal(value, expected)
        stop = threading.Event()
        errors = []

        def serve():
            try:
                while not stop.is_set():
                    partition = cache.get(signature)
                    out = list(partition.execute(dict(FEED)).values())
                    for value, expected in zip(out, reference):
                        if not np.array_equal(value, expected):
                            raise AssertionError(
                                "response changed during a swap"
                            )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=serve, name=f"serve-{i}")
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for i in range(100):
            displaced = cache.swap(
                signature, second if i % 2 == 0 else first
            )
            assert displaced is not None
            time.sleep(0.001)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert cache.stats().swaps >= 100
        first.close()
        second.close()
