"""Adaptive policy: config validation and the A/B trial decision table."""

import pytest

from repro.adaptive import AdaptiveConfig, TrialResult, Verdict, judge_trial


def trial(
    challenger=1.0,
    incumbent=1.0,
    errors=0,
    challenger_samples=8,
    incumbent_samples=24,
):
    return TrialResult(
        challenger_seconds=challenger,
        incumbent_seconds=incumbent,
        challenger_errors=errors,
        challenger_samples=challenger_samples,
        incumbent_samples=incumbent_samples,
    )


class TestConfig:
    def test_defaults_are_valid(self):
        AdaptiveConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("poll_interval_s", 0.0),
            ("drift_threshold", 1.0),
            ("window", 0),
            ("min_executes", 0),
            ("trial_fraction", 0.0),
            ("trial_fraction", 0.6),
            ("trial_requests", 0),
            ("win_margin", -0.1),
            ("win_margin", 1.0),
            ("cooldown_polls", -1),
            ("retune_budget", 0),
            ("max_retunes_per_signature", 0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            AdaptiveConfig(**{field: value})

    def test_trial_stride_from_fraction(self):
        assert AdaptiveConfig(trial_fraction=0.25).trial_stride == 4
        assert AdaptiveConfig(trial_fraction=0.5).trial_stride == 2
        assert AdaptiveConfig(trial_fraction=0.1).trial_stride == 10
        # The stride never routes a majority of traffic to the challenger.
        assert AdaptiveConfig(trial_fraction=0.49).trial_stride >= 2


class TestJudgeTrial:
    """The decision table: challenger wins / loses / errors."""

    CONFIG = AdaptiveConfig(win_margin=0.05)

    def test_challenger_wins_by_margin(self):
        result = judge_trial(trial(challenger=0.5, incumbent=1.0), self.CONFIG)
        assert result is Verdict.PROMOTE

    def test_challenger_loses(self):
        result = judge_trial(trial(challenger=1.5, incumbent=1.0), self.CONFIG)
        assert result is Verdict.REJECT

    def test_tie_keeps_incumbent(self):
        result = judge_trial(trial(challenger=1.0, incumbent=1.0), self.CONFIG)
        assert result is Verdict.REJECT

    def test_win_inside_margin_is_not_enough(self):
        # 4% faster, but the margin demands 5%: status quo wins.
        result = judge_trial(
            trial(challenger=0.96, incumbent=1.0), self.CONFIG
        )
        assert result is Verdict.REJECT

    def test_any_challenger_error_quarantines(self):
        # Even a blazingly fast challenger is never trusted after raising.
        result = judge_trial(
            trial(challenger=0.01, incumbent=1.0, errors=1), self.CONFIG
        )
        assert result is Verdict.QUARANTINE

    def test_no_challenger_evidence_rejects(self):
        result = judge_trial(
            trial(challenger=0.0, challenger_samples=0), self.CONFIG
        )
        assert result is Verdict.REJECT

    def test_no_incumbent_evidence_rejects(self):
        result = judge_trial(
            trial(challenger=0.5, incumbent=0.0, incumbent_samples=0),
            self.CONFIG,
        )
        assert result is Verdict.REJECT
