"""DriftMonitor: calibration, breach windows, stale polls, recalibration."""

import pytest

from repro import DType, GraphBuilder, XEON_8358, compile_graph
from repro.adaptive import AdaptiveConfig, DriftMonitor, modeled_partition_seconds
from repro.service.stats import SignatureStats

CONFIG = AdaptiveConfig(
    drift_threshold=1.5, window=2, min_executes=4, cooldown_polls=1
)


def snapshot(sig="sig", ewma=1e-3, samples=10):
    return SignatureStats(
        signature=sig,
        label="",
        nbytes=0,
        compiles=1,
        compile_seconds=0.0,
        executes=samples,
        resident=True,
        latency_ewma_seconds=ewma,
        latency_samples=samples,
    )


def calibrated_monitor(sig="sig", ewma=1e-3, samples=4):
    monitor = DriftMonitor(CONFIG)
    monitor.register(sig, modeled_seconds=1e-3)
    assert monitor.observe(snapshot(sig, ewma=ewma, samples=samples)) is False
    return monitor


class TestModeledSeconds:
    def test_positive_for_real_partition(self):
        b = GraphBuilder("tiny")
        x = b.input("x", DType.f32, (8, 32))
        w = b.constant("w", dtype=DType.f32, shape=(32, 16))
        b.output(b.relu(b.matmul(x, w)))
        partition = compile_graph(b.finish())
        seconds = modeled_partition_seconds(partition, XEON_8358)
        assert seconds is not None and seconds > 0
        partition.close()

    def test_none_for_unmodelable_object(self):
        assert modeled_partition_seconds(object(), XEON_8358) is None


class TestDriftMonitor:
    def test_unregistered_signature_never_triggers(self):
        monitor = DriftMonitor(CONFIG)
        assert monitor.observe(snapshot(ewma=1.0, samples=100)) is False

    def test_too_few_samples_defer_calibration(self):
        monitor = DriftMonitor(CONFIG)
        monitor.register("sig", 1e-3)
        assert monitor.observe(snapshot(samples=3)) is False
        assert monitor.ratio("sig") is None

    def test_window_of_breaches_declares_drift(self):
        monitor = calibrated_monitor()
        # Two consecutive breaching polls (each with new samples).
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=6)) is True
        assert monitor.ratio("sig") == pytest.approx(10.0)

    def test_single_breach_is_not_drift(self):
        monitor = calibrated_monitor()
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False

    def test_recovery_resets_the_breach_window(self):
        monitor = calibrated_monitor()
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        # Back under threshold: the count starts over.
        assert monitor.observe(snapshot(ewma=1e-3, samples=6)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=7)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=8)) is True

    def test_stale_snapshot_does_not_advance_window(self):
        monitor = calibrated_monitor()
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        # Same sample count as the last poll: no new evidence.
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=6)) is True

    def test_trigger_resets_for_the_next_episode(self):
        monitor = calibrated_monitor()
        monitor.observe(snapshot(ewma=1e-2, samples=5))
        assert monitor.observe(snapshot(ewma=1e-2, samples=6)) is True
        # Immediately after a trigger a fresh window is required.
        assert monitor.observe(snapshot(ewma=1e-2, samples=7)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=8)) is True

    def test_recalibrate_defines_a_new_normal(self):
        monitor = calibrated_monitor()
        monitor.recalibrate("sig")
        # First trusted poll after recalibration is the new baseline,
        # even at what used to be a drifted level.
        assert monitor.observe(snapshot(ewma=1e-2, samples=20)) is False
        assert monitor.ratio("sig") == pytest.approx(1.0)
        assert monitor.observe(snapshot(ewma=1e-2, samples=21)) is False

    def test_missing_model_falls_back_to_raw_ewma(self):
        monitor = DriftMonitor(CONFIG)
        monitor.register("sig", modeled_seconds=None)
        assert monitor.observe(snapshot(samples=4)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=5)) is False
        assert monitor.observe(snapshot(ewma=1e-2, samples=6)) is True
