"""Chrome-trace export tests: event mapping, round-trip, validation."""

import json

from repro.observability.export import (
    chrome_trace,
    chrome_trace_events,
    flow_chains,
    metrics_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_flow_chains,
    write_chrome_trace,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.report import format_report, format_table
from repro.observability.tracer import Tracer


def _populated_tracer() -> Tracer:
    t = Tracer()
    with t.span("compile:mlp", category="stage", graph="mlp"):
        with t.span("pass:cse", category="graph_pass", ops_before=9):
            pass
        t.instant("alloc:buf0", category="runtime", nbytes=4096)
    return t


class TestEventMapping:
    def test_complete_events(self):
        t = _populated_tracer()
        events = chrome_trace_events(t.records())
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"compile:mlp", "pass:cse"}
        for e in complete:
            assert e["pid"] == 1
            assert isinstance(e["ts"], (int, float))
            assert e["dur"] >= 0
        by_name = {e["name"]: e for e in complete}
        assert by_name["compile:mlp"]["cat"] == "stage"
        assert by_name["compile:mlp"]["args"] == {"graph": "mlp"}
        assert by_name["pass:cse"]["args"] == {"ops_before": 9}

    def test_instant_events(self):
        events = chrome_trace_events(_populated_tracer().records())
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "alloc:buf0"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_thread_metadata_and_dense_tids(self):
        events = chrome_trace_events(_populated_tracer().records())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"] == {"name": "thread-1"}
        assert all(e["tid"] == 1 for e in events)

    def test_events_sorted_by_start(self):
        events = chrome_trace_events(_populated_tracer().records())
        timed = [e for e in events if e["ph"] in ("X", "i")]
        assert timed == sorted(timed, key=lambda e: e["ts"])

    def test_non_json_attrs_stringified(self):
        t = Tracer()
        with t.span("x", obj=object(), ok=1.5):
            pass
        (event,) = [
            e for e in chrome_trace_events(t.records()) if e["ph"] == "X"
        ]
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["ok"] == 1.5


class TestFlowEvents:
    def _traced_chain(self) -> Tracer:
        t = Tracer()
        with t.span("shard.submit", category="service"):
            t.flow("request", "s", "3f-1")
        with t.span("batch.execute", category="service"):
            t.flow("request", "t", "3f-1")
        with t.span("shard.response", category="service"):
            t.flow("request", "f", "3f-1")
        return t

    def test_flow_events_map_to_s_t_f(self):
        events = chrome_trace_events(self._traced_chain().records())
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        assert [e["ph"] for e in flows] == ["s", "t", "f"]
        assert all(e["id"] == "3f-1" for e in flows)
        assert all("dur" not in e for e in flows)
        # The terminating arrowhead binds to the enclosing slice's end.
        assert flows[-1]["bp"] == "e"
        assert "bp" not in flows[0]

    def test_flow_events_validate(self):
        document = chrome_trace(self._traced_chain())
        assert validate_chrome_trace(document) == []
        assert validate_flow_chains(document) == []

    def test_flow_event_requires_id(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "r", "ph": "s", "pid": 1, "tid": 1, "ts": 0}
                ]
            }
        )
        assert any("missing id" in p for p in problems)

    def test_flow_chains_group_and_sort(self):
        t = Tracer()
        t.flow("request", "s", "a")
        t.flow("request", "s", "b")
        t.flow("request", "f", "a")
        t.flow("request", "f", "b")
        chains = flow_chains(chrome_trace(t))
        assert set(chains) == {"a", "b"}
        for events in chains.values():
            assert [e["ph"] for e in events] == ["s", "f"]

    def test_dangling_chain_detected(self):
        t = Tracer()
        t.flow("request", "s", "lost")
        problems = validate_flow_chains(chrome_trace(t))
        assert any("finish" in p for p in problems)

    def test_double_start_detected(self):
        t = Tracer()
        t.flow("request", "s", "dup")
        t.flow("request", "s", "dup")
        t.flow("request", "f", "dup")
        problems = validate_flow_chains(chrome_trace(t))
        assert any("2 start events" in p for p in problems)

    def test_out_of_order_chain_detected(self):
        document = {
            "traceEvents": [
                {"name": "r", "ph": "f", "pid": 1, "tid": 1, "ts": 0,
                 "id": "x"},
                {"name": "r", "ph": "s", "pid": 1, "tid": 1, "ts": 5,
                 "id": "x"},
            ]
        }
        problems = validate_flow_chains(document)
        assert any("out-of-order" in p for p in problems)


class TestDocument:
    def test_metrics_embedded(self):
        reg = MetricsRegistry()
        reg.counter("compile.count").inc()
        document = chrome_trace(_populated_tracer(), reg)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["metrics"]["compile.count"]["value"] == 1

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        reg = MetricsRegistry()
        reg.histogram("compile.seconds").observe(0.25)
        written = write_chrome_trace(path, _populated_tracer(), reg)
        loaded = json.load(open(path))
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []
        assert validate_chrome_trace_file(path) == []

    def test_metrics_json_is_parseable(self):
        reg = MetricsRegistry()
        reg.counter("a", k="v").inc(2)
        parsed = json.loads(metrics_json(reg))
        assert parsed["a{k=v}"] == {"kind": "counter", "value": 2}


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_flags_missing_fields(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        )
        assert any("missing 'name'" in p for p in problems)

    def test_flags_bad_phase_and_dur(self):
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
                    {
                        "name": "b",
                        "ph": "X",
                        "pid": 1,
                        "tid": 1,
                        "ts": 0,
                        "dur": -5,
                    },
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("invalid dur" in p for p in problems)

    def test_missing_file(self, tmp_path):
        problems = validate_chrome_trace_file(str(tmp_path / "absent.json"))
        assert problems and "cannot load" in problems[0]


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "count"], [("cse", 3), ("dce", 12)], title="passes"
        )
        lines = table.splitlines()
        assert lines[0] == "passes"
        assert "name" in lines[1] and "count" in lines[1]
        # Numeric column right-aligned: counts end at the same offset.
        assert lines[2].rstrip().endswith("3")
        assert lines[3].rstrip().endswith("12")
        assert len(lines[2].rstrip()) == len(lines[3].rstrip())

    def test_full_report_sections(self):
        t = _populated_tracer()
        reg = MetricsRegistry()
        reg.counter("compile.count").inc()
        report = format_report(t, reg)
        assert "top passes" in report
        assert "top ops" in report
        assert "brgemm reconciliation" in report
        assert "metrics" in report
        assert "pass:cse" in report
        assert "compile.count" in report

    def test_reconciliation_groups_by_blocks(self):
        t = Tracer()
        for _ in range(3):
            with t.span(
                "brgemm",
                category="microkernel",
                blocks="32x32x64x4",
                modeled_cycles=1000.0,
                measured_cycles=1500.0,
            ):
                pass
        from repro.observability.report import format_brgemm_reconciliation

        text = format_brgemm_reconciliation(t)
        assert "32x32x64x4" in text
        assert "1.500" in text  # ratio column
