"""Prometheus exposition: rendering, fleet merge, format checker."""

from repro.observability.metrics import (
    MetricsRegistry,
    merge_metric_records,
)
from repro.observability.prometheus import (
    metrics_text,
    render_metric_records,
    validate_exposition_text,
)


def _scrape(registry: MetricsRegistry) -> str:
    return metrics_text(registry)


class TestRendering:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").inc(3)
        reg.gauge("service.shard.workers").set(2)
        text = _scrape(reg)
        assert "# TYPE service_requests counter" in text
        assert "service_requests 3" in text
        assert "# TYPE service_shard_workers gauge" in text
        assert "service_shard_workers 2" in text

    def test_histogram_renders_as_summary(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency.seconds")
        for i in range(1, 101):
            hist.observe(i / 1000.0)
        text = _scrape(reg)
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"}' in text
        assert 'latency_seconds{quantile="0.95"}' in text
        assert 'latency_seconds{quantile="0.99"}' in text
        assert "latency_seconds_count 100" in text
        assert "latency_seconds_sum" in text

    def test_labels_render_and_escape(self):
        reg = MetricsRegistry()
        reg.counter("hits", path='a"b\\c', tier="hot").inc()
        text = _scrape(reg)
        assert 'path="a\\"b\\\\c"' in text
        assert 'tier="hot"' in text
        assert validate_exposition_text(text) == []

    def test_one_type_header_per_name(self):
        reg = MetricsRegistry()
        reg.counter("routed", worker="w0").inc()
        reg.counter("routed", worker="w1").inc(2)
        text = _scrape(reg)
        assert text.count("# TYPE routed counter") == 1

    def test_empty_registry_renders_empty(self):
        assert _scrape(MetricsRegistry()) == ""

    def test_dots_become_underscores(self):
        reg = MetricsRegistry()
        reg.counter("a.b.c-d").inc()
        text = _scrape(reg)
        assert "a_b_c_d 1" in text

    def test_our_output_always_validates(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc()
        reg.gauge("g").set(-1.5)
        reg.histogram("h.seconds", worker="w0").observe(0.25)
        reg.histogram("h.seconds", worker="w1").observe(0.5)
        assert validate_exposition_text(_scrape(reg)) == []


class TestFleetMerge:
    def test_counters_sum_and_histograms_merge(self):
        shards = []
        for worker in ("w0", "w1"):
            reg = MetricsRegistry()
            reg.counter("service.requests").inc(10)
            hist = reg.histogram("latency.seconds")
            for i in range(1, 51):
                hist.observe(i / 1000.0)
            shards.append(reg.export_records())
        merged = merge_metric_records(shards)
        text = render_metric_records(merged.export_records())
        assert "service_requests 20" in text
        assert "latency_seconds_count 100" in text
        assert validate_exposition_text(text) == []

    def test_fleet_quantile_is_honest(self):
        """Merging shards must answer quantiles over the union, not an
        average of per-shard answers."""
        fast, slow = MetricsRegistry(), MetricsRegistry()
        for _ in range(95):
            fast.histogram("lat").observe(0.001)
        for _ in range(5):
            slow.histogram("lat").observe(1.0)
        merged = merge_metric_records(
            [fast.export_records(), slow.export_records()]
        )
        hist = merged.histogram("lat")
        assert hist.count == 100
        assert hist.quantile(0.5) < 0.01  # median is a fast request
        assert hist.quantile(0.99) > 0.5  # tail sees the slow shard


class TestChecker:
    def test_flags_unparseable_sample(self):
        problems = validate_exposition_text("what is this\n")
        assert problems and "unparseable" in problems[0]

    def test_flags_missing_type_header(self):
        problems = validate_exposition_text("orphan_metric 1\n")
        assert problems and "no TYPE header" in problems[0]

    def test_flags_bad_type(self):
        text = "# TYPE m wat\nm 1\n"
        problems = validate_exposition_text(text)
        assert any("malformed TYPE" in p for p in problems)

    def test_flags_non_numeric_value(self):
        text = "# TYPE m counter\nm banana\n"
        problems = validate_exposition_text(text)
        assert any("non-numeric" in p for p in problems)

    def test_flags_bad_label_pair(self):
        text = '# TYPE m counter\nm{k=unquoted} 1\n'
        problems = validate_exposition_text(text)
        assert any("bad label pair" in p for p in problems)

    def test_accepts_suffixes_under_base_type(self):
        text = (
            "# TYPE s summary\n"
            's{quantile="0.5"} 1\n'
            "s_sum 2\n"
            "s_count 3\n"
        )
        assert validate_exposition_text(text) == []

    def test_accepts_special_values(self):
        text = "# TYPE g gauge\ng NaN\ng2_is_missing_header +Inf\n"
        problems = validate_exposition_text(text)
        # NaN parses; the second line's only problem is the header.
        assert all("header" in p for p in problems)
