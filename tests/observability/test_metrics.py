"""Metrics registry unit tests: instruments, labels, identity, threads."""

import threading

import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    merge_metric_records,
    set_registry,
)


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("bytes")
        g.set(100)
        g.add(-25)
        assert g.value == 75


class TestHistogram:
    def test_summary(self):
        h = MetricsRegistry().histogram("seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["sum"] == 6.0
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == 2.0

    def test_empty(self):
        h = MetricsRegistry().histogram("empty")
        assert h.to_dict() == {
            "count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0,
            "p50": None, "p95": None, "p99": None,
        }


class TestRegistry:
    def test_same_identity_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", x=1) is reg.counter("a", x=1)

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        reg.counter("results", source="cache").inc()
        reg.counter("results", source="search").inc(5)
        assert reg.value("results", source="cache") == 1
        assert reg.value("results", source="search") == 5
        assert reg.value("results", source="nope") is None

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_keys_and_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3)
        reg.counter("l", mode="fast").inc()
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 1}
        assert snap["g"] == {"kind": "gauge", "value": 2}
        assert snap["h"]["kind"] == "histogram" and snap["h"]["count"] == 1
        assert "l{mode=fast}" in snap

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert reg.snapshot() == {}

    def test_concurrent_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("n") == 8000
        assert reg.histogram("h").count == 8000


class TestDeterministicOrder:
    def test_instruments_sorted_by_name_then_labels(self):
        """Snapshot/export order must not depend on creation order — CI
        diffs metrics artifacts across runs."""
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first", worker="w1").inc()
        reg.counter("a.first", worker="w0").inc()
        reg.gauge("m.middle").set(1)
        names = [
            (i.name, i.labels) for i in reg.instruments()
        ]
        assert names == sorted(names)
        assert names[0][0] == "a.first"
        assert names[0][1] == (("worker", "w0"),)

    def test_snapshot_order_stable_across_creation_orders(self):
        import json

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for reg, order in ((forward, (1, 2, 3)), (backward, (3, 2, 1))):
            for i in order:
                reg.counter("c", idx=str(i)).inc(i)
        assert json.dumps(forward.snapshot()) == json.dumps(
            backward.snapshot()
        )
        assert [r["name"] for r in forward.export_records()] == [
            r["name"] for r in backward.export_records()
        ]


class TestRecords:
    def test_export_load_round_trip(self):
        source = MetricsRegistry()
        source.counter("c", k="v").inc(3)
        source.gauge("g").set(2.5)
        source.histogram("h").observe(0.5)
        target = MetricsRegistry()
        target.load_records(source.export_records())
        assert target.value("c", k="v") == 3
        assert target.value("g") == 2.5
        assert target.histogram("h").count == 1

    def test_load_accumulates(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        source.histogram("h").observe(1.0)
        target = MetricsRegistry()
        target.load_records(source.export_records())
        target.load_records(source.export_records())
        assert target.value("c") == 4
        assert target.histogram("h").count == 2

    def test_records_are_picklable(self):
        import pickle

        reg = MetricsRegistry()
        reg.histogram("h", worker="w0").observe(0.25)
        records = pickle.loads(pickle.dumps(reg.export_records()))
        merged = merge_metric_records([records])
        assert merged.histogram("h", worker="w0").count == 1

    def test_merge_metric_records_sums(self):
        fleets = []
        for _ in range(3):
            reg = MetricsRegistry()
            reg.counter("requests").inc(5)
            reg.histogram("lat").observe(0.1)
            fleets.append(reg.export_records())
        merged = merge_metric_records(fleets)
        assert merged.value("requests") == 15
        assert merged.histogram("lat").count == 3

    def test_histogram_quantiles_in_to_dict(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for i in range(1, 101):
            hist.observe(float(i))
        d = hist.to_dict()
        assert 45 <= d["p50"] <= 55
        assert 90 <= d["p95"] <= 100
        assert d["p99"] <= 100


class TestGlobal:
    def test_get_set(self):
        original = get_registry()
        try:
            mine = set_registry(MetricsRegistry())
            assert get_registry() is mine
            assert get_registry() is not original
        finally:
            set_registry(original)
