"""Metrics registry unit tests: instruments, labels, identity, threads."""

import threading

import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("bytes")
        g.set(100)
        g.add(-25)
        assert g.value == 75


class TestHistogram:
    def test_summary(self):
        h = MetricsRegistry().histogram("seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["sum"] == 6.0
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["mean"] == 2.0

    def test_empty(self):
        h = MetricsRegistry().histogram("empty")
        assert h.to_dict() == {
            "count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0,
        }


class TestRegistry:
    def test_same_identity_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", x=1) is reg.counter("a", x=1)

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        reg.counter("results", source="cache").inc()
        reg.counter("results", source="search").inc(5)
        assert reg.value("results", source="cache") == 1
        assert reg.value("results", source="search") == 5
        assert reg.value("results", source="nope") is None

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_keys_and_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(3)
        reg.counter("l", mode="fast").inc()
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "value": 1}
        assert snap["g"] == {"kind": "gauge", "value": 2}
        assert snap["h"]["kind"] == "histogram" and snap["h"]["count"] == 1
        assert "l{mode=fast}" in snap

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert reg.snapshot() == {}

    def test_concurrent_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("n") == 8000
        assert reg.histogram("h").count == 8000


class TestGlobal:
    def test_get_set(self):
        original = get_registry()
        try:
            mine = set_registry(MetricsRegistry())
            assert get_registry() is mine
            assert get_registry() is not original
        finally:
            set_registry(original)
