"""QuantileHistogram: accuracy bound, merge, serialization, plain-data."""

import copy
import pickle

import numpy as np
import pytest

from repro.observability.quantile import (
    DEFAULT_GROWTH,
    QuantileHistogram,
    from_values,
)


class TestAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "dist",
        ["uniform", "lognormal", "exponential"],
    )
    def test_quantiles_within_one_bucket_of_numpy(self, seed, dist):
        """The acceptance bound: p50/p95/p99 agree with the NumPy order
        statistic within one log-bucket width (a factor of ``growth``)."""
        rng = np.random.default_rng(seed)
        if dist == "uniform":
            values = rng.uniform(1e-4, 1.0, size=5000)
        elif dist == "lognormal":
            values = rng.lognormal(mean=-5.0, sigma=1.0, size=5000)
        else:
            values = rng.exponential(scale=0.01, size=5000)
        hist = from_values(values)
        for q in (0.50, 0.95, 0.99):
            reference = float(np.quantile(values, q))
            measured = hist.quantile(q)
            assert measured is not None
            # One bucket of slack on either side of the true value.
            assert reference / DEFAULT_GROWTH <= measured
            assert measured <= reference * DEFAULT_GROWTH

    def test_single_value(self):
        hist = from_values([0.25])
        assert hist.quantile(0.0) == 0.25
        assert hist.quantile(0.5) == 0.25
        assert hist.quantile(1.0) == 0.25
        assert hist.min == hist.max == 0.25

    def test_zero_and_tiny_values_clamp_to_zero_bucket(self):
        hist = QuantileHistogram()
        hist.observe(0.0)
        hist.observe(1e-12)
        assert hist.count == 2
        assert hist.quantile(0.5) == 0.0

    def test_empty_quantile_is_none(self):
        assert QuantileHistogram().quantile(0.95) is None

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            from_values([1.0]).quantile(1.5)

    def test_mean_min_max_exact(self):
        hist = from_values([1.0, 2.0, 3.0])
        assert hist.mean == 2.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.sum == 6.0


class TestMerge:
    def test_merge_equals_union(self):
        """Merging shards gives the same answer as observing the union —
        the property fleet percentiles rely on."""
        rng = np.random.default_rng(7)
        a = rng.exponential(scale=0.005, size=2000)
        b = rng.lognormal(mean=-6.0, sigma=0.8, size=3000)
        merged = from_values(a).merge(from_values(b))
        union = from_values(np.concatenate([a, b]))
        assert merged.count == union.count
        assert merged.buckets == union.buckets
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == union.quantile(q)

    def test_merge_growth_mismatch_raises(self):
        with pytest.raises(ValueError):
            QuantileHistogram(1.05).merge(QuantileHistogram(1.10))

    def test_merge_returns_self(self):
        a, b = from_values([1.0]), from_values([2.0])
        assert a.merge(b) is a

    def test_copy_is_independent(self):
        a = from_values([1.0, 2.0])
        b = a.copy()
        b.observe(3.0)
        assert a.count == 2
        assert b.count == 3


class TestSerialization:
    def test_dict_round_trip(self):
        hist = from_values([0.001, 0.01, 0.1, 1.0])
        clone = QuantileHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.buckets == hist.buckets
        assert clone.quantile(0.95) == hist.quantile(0.95)

    def test_dict_is_json_ready(self):
        import json

        text = json.dumps(from_values([0.5, 0.25]).to_dict())
        assert "buckets" in text

    def test_pickle_round_trip(self):
        hist = from_values([0.5, 0.25, 0.125])
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.buckets == hist.buckets
        assert clone.quantile(0.5) == hist.quantile(0.5)

    def test_deepcopy(self):
        hist = from_values([0.5])
        clone = copy.deepcopy(hist)
        clone.observe(1.0)
        assert hist.count == 1

    def test_summary_block(self):
        summary = from_values([0.001, 0.002, 0.003]).summary(
            scale=1e3, digits=4
        )
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert 0.9 <= summary["p50"] <= 3.1
