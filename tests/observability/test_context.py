"""RequestContext: minting, wire hops, thread-local binding."""

import threading

from repro.observability.context import (
    RequestContext,
    _NULL_BINDING,
    active_contexts,
    bind_contexts,
)


class TestMinting:
    def test_ids_unique_and_monotonic(self):
        a, b = RequestContext.mint(), RequestContext.mint()
        assert a.request_id < b.request_id
        assert a.trace_id != b.trace_id
        assert a.hop == 0

    def test_trace_id_embeds_process_seed(self):
        ctx = RequestContext.mint()
        assert ctx.trace_id.endswith(f"-{ctx.request_id:x}")

    def test_flow_id_is_trace_id(self):
        ctx = RequestContext.mint()
        assert ctx.flow_id == ctx.trace_id


class TestWire:
    def test_round_trip_increments_hop(self):
        ctx = RequestContext.mint()
        relayed = RequestContext.from_wire(ctx.to_wire())
        assert relayed.trace_id == ctx.trace_id
        assert relayed.request_id == ctx.request_id
        assert relayed.hop == 1
        # Same chain identity across the hop.
        assert relayed.flow_id == ctx.flow_id

    def test_none_wire_is_none(self):
        assert RequestContext.from_wire(None) is None

    def test_double_hop(self):
        ctx = RequestContext.mint()
        twice = RequestContext.from_wire(
            RequestContext.from_wire(ctx.to_wire()).to_wire()
        )
        assert twice.hop == 2


class TestBinding:
    def test_empty_binding_is_shared_noop(self):
        assert bind_contexts(()) is _NULL_BINDING
        assert bind_contexts([]) is _NULL_BINDING
        with bind_contexts(()):
            assert active_contexts() == ()

    def test_bound_contexts_visible_inside_only(self):
        ctxs = (RequestContext.mint(), RequestContext.mint())
        assert active_contexts() == ()
        with bind_contexts(ctxs):
            assert active_contexts() == ctxs
        assert active_contexts() == ()

    def test_nested_bindings_shadow(self):
        outer = (RequestContext.mint(),)
        inner = (RequestContext.mint(),)
        with bind_contexts(outer):
            with bind_contexts(inner):
                assert active_contexts() == inner
            assert active_contexts() == outer

    def test_bindings_are_thread_local(self):
        ctxs = (RequestContext.mint(),)
        seen = {}

        def probe():
            seen["other"] = active_contexts()

        with bind_contexts(ctxs):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] == ()
