"""Tracer unit tests: nesting, threads, disabled-mode no-ops, env toggle."""

import threading

import pytest

from repro.observability import tracer as tracer_mod
from repro.observability.tracer import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)


class TestSpans:
    def test_records_name_category_attrs(self):
        t = Tracer()
        with t.span("compile", category="stage", graph="mlp"):
            pass
        (record,) = t.records()
        assert record.name == "compile"
        assert record.category == "stage"
        assert record.attrs == {"graph": "mlp"}
        assert record.end >= record.start

    def test_set_attaches_attrs_while_open(self):
        t = Tracer()
        with t.span("pass") as span:
            span.set(ops_after=3)
        (record,) = t.records()
        assert record.attrs == {"ops_after": 3}

    def test_nesting_depth(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                with t.span("innermost"):
                    pass
        by_name = {r.name: r for r in t.records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2

    def test_children_finish_before_parents(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        names = [r.name for r in t.records()]
        assert names == ["inner", "outer"]

    def test_exception_still_records(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in t.records()] == ["doomed"]
        # The stack unwound: a new span is back at depth 0.
        with t.span("after"):
            pass
        assert t.named("after")[0].depth == 0

    def test_instant_event(self):
        t = Tracer()
        t.instant("alloc", category="runtime", nbytes=64)
        (record,) = t.records()
        assert record.start == record.end
        assert record.attrs["nbytes"] == 64

    def test_clear_and_len(self):
        t = Tracer()
        with t.span("a"):
            pass
        assert len(t) == 1
        t.clear()
        assert len(t) == 0


class TestThreads:
    def test_threads_have_independent_stacks(self):
        t = Tracer()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with t.span(f"outer{i}"):
                with t.span(f"inner{i}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        records = t.records()
        assert len(records) == 8
        assert len({r.thread_id for r in records}) == 4
        for i in range(4):
            assert t.named(f"inner{i}")[0].depth == 1
            assert t.named(f"outer{i}")[0].depth == 0


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        span_a = t.span("a", category="x", attr=1)
        span_b = t.span("b")
        # One shared object, no allocation per call, nothing recorded.
        assert span_a is span_b
        with span_a as s:
            s.set(anything="goes")
        assert len(t) == 0

    def test_disabled_instant_records_nothing(self):
        t = Tracer(enabled=False)
        t.instant("x")
        assert len(t) == 0

    def test_reenable(self):
        t = Tracer(enabled=False)
        t.enabled = True
        with t.span("now"):
            pass
        assert len(t) == 1


class TestGlobal:
    def test_get_set_enable_disable(self):
        original = get_tracer()
        try:
            mine = set_tracer(Tracer(enabled=False))
            assert get_tracer() is mine
            assert enable_tracing() is mine and mine.enabled
            assert disable_tracing() is mine and not mine.enabled
        finally:
            set_tracer(original)

    def test_module_level_span_routes_to_global(self):
        original = get_tracer()
        try:
            mine = set_tracer(Tracer(enabled=True))
            with tracer_mod.span("via-module", category="stage"):
                pass
            assert mine.named("via-module")
        finally:
            set_tracer(original)

    def test_env_toggle_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        t = Tracer(enabled=False)
        tracer_mod._from_env(t)
        assert t.enabled

    def test_env_toggle_off_values(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("REPRO_TRACE", value)
            t = Tracer(enabled=False)
            tracer_mod._from_env(t)
            assert not t.enabled, value
