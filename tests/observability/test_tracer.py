"""Tracer unit tests: nesting, threads, disabled-mode no-ops, env toggle."""

import threading

import pytest

from repro.observability import tracer as tracer_mod
from repro.observability.tracer import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)


class TestSpans:
    def test_records_name_category_attrs(self):
        t = Tracer()
        with t.span("compile", category="stage", graph="mlp"):
            pass
        (record,) = t.records()
        assert record.name == "compile"
        assert record.category == "stage"
        assert record.attrs == {"graph": "mlp"}
        assert record.end >= record.start

    def test_set_attaches_attrs_while_open(self):
        t = Tracer()
        with t.span("pass") as span:
            span.set(ops_after=3)
        (record,) = t.records()
        assert record.attrs == {"ops_after": 3}

    def test_nesting_depth(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                with t.span("innermost"):
                    pass
        by_name = {r.name: r for r in t.records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2

    def test_children_finish_before_parents(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        names = [r.name for r in t.records()]
        assert names == ["inner", "outer"]

    def test_exception_still_records(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in t.records()] == ["doomed"]
        # The stack unwound: a new span is back at depth 0.
        with t.span("after"):
            pass
        assert t.named("after")[0].depth == 0

    def test_instant_event(self):
        t = Tracer()
        t.instant("alloc", category="runtime", nbytes=64)
        (record,) = t.records()
        assert record.start == record.end
        assert record.attrs["nbytes"] == 64

    def test_clear_and_len(self):
        t = Tracer()
        with t.span("a"):
            pass
        assert len(t) == 1
        t.clear()
        assert len(t) == 0


class TestFlow:
    def test_flow_records_phase_and_id(self):
        t = Tracer()
        with t.span("shard.submit"):
            t.flow("request", "s", "abc-1")
        t.flow("request", "t", "abc-1")
        t.flow("request", "f", "abc-1")
        flows = [r for r in t.records() if r.flow is not None]
        assert [r.flow for r in flows] == ["s", "t", "f"]
        assert all(r.flow_id == "abc-1" for r in flows)
        assert all(r.start == r.end for r in flows)

    def test_invalid_phase_raises(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.flow("request", "x", "abc-1")

    def test_disabled_flow_records_nothing(self):
        t = Tracer(enabled=False)
        t.flow("request", "s", "abc-1")
        # Not even the phase check runs on the disabled path.
        t.flow("request", "bogus", "abc-1")
        assert len(t) == 0

    def test_ordinary_spans_carry_no_flow(self):
        t = Tracer()
        with t.span("plain"):
            pass
        (record,) = t.records()
        assert record.flow is None
        assert record.flow_id is None


class TestThreads:
    def test_threads_have_independent_stacks(self):
        t = Tracer()
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with t.span(f"outer{i}"):
                with t.span(f"inner{i}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        records = t.records()
        assert len(records) == 8
        assert len({r.thread_id for r in records}) == 4
        for i in range(4):
            assert t.named(f"inner{i}")[0].depth == 1
            assert t.named(f"outer{i}")[0].depth == 0


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        span_a = t.span("a", category="x", attr=1)
        span_b = t.span("b")
        # One shared object, no allocation per call, nothing recorded.
        assert span_a is span_b
        with span_a as s:
            s.set(anything="goes")
        assert len(t) == 0

    def test_disabled_instant_records_nothing(self):
        t = Tracer(enabled=False)
        t.instant("x")
        assert len(t) == 0

    def test_disabled_span_allocates_nothing(self):
        """The serving hot path's zero-overhead bar: with tracing off,
        span() hands back the shared no-op without allocating."""
        import tracemalloc

        t = Tracer(enabled=False)
        t.span("warmup")  # intern anything lazily created
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in range(100):
                with t.span("hot", category="service", batch=8):
                    pass
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        assert after - before == 0

    def test_reenable(self):
        t = Tracer(enabled=False)
        t.enabled = True
        with t.span("now"):
            pass
        assert len(t) == 1


class TestGlobal:
    def test_get_set_enable_disable(self):
        original = get_tracer()
        try:
            mine = set_tracer(Tracer(enabled=False))
            assert get_tracer() is mine
            assert enable_tracing() is mine and mine.enabled
            assert disable_tracing() is mine and not mine.enabled
        finally:
            set_tracer(original)

    def test_module_level_span_routes_to_global(self):
        original = get_tracer()
        try:
            mine = set_tracer(Tracer(enabled=True))
            with tracer_mod.span("via-module", category="stage"):
                pass
            assert mine.named("via-module")
        finally:
            set_tracer(original)

    def test_env_toggle_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        t = Tracer(enabled=False)
        tracer_mod._from_env(t)
        assert t.enabled

    def test_env_toggle_off_values(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("REPRO_TRACE", value)
            t = Tracer(enabled=False)
            tracer_mod._from_env(t)
            assert not t.enabled, value
