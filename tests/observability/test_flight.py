"""Flight recorder: ring bounds, delta protocol, gated dumps."""

import json
import os

from repro.observability.export import (
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.observability.flight import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    dump_flight,
    flight_dir,
    get_flight_recorder,
    set_flight_recorder,
)
from repro.observability.tracer import SpanRecord


class TestRing:
    def test_bounded_capacity(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(f"e{i}")
        assert len(rec) == 4
        assert [r.name for r in rec.records()] == ["e6", "e7", "e8", "e9"]
        assert rec.sequence == 10

    def test_record_carries_attrs_and_duration(self):
        rec = FlightRecorder()
        rec.record("exec", category="service", duration=0.5, batch=8)
        (record,) = rec.records()
        assert record.attrs == {"batch": 8}
        assert abs((record.end - record.start) - 0.5) < 1e-9

    def test_records_since_delta(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(f"e{i}")
        # 8 already shipped, 2 new — but never more than the ring holds.
        assert [r.name for r in rec.records_since(8)] == ["e8", "e9"]
        assert rec.records_since(10) == []
        # A huge backlog is capped at ring capacity.
        assert len(rec.records_since(0)) == 4

    def test_clear(self):
        rec = FlightRecorder()
        rec.record("x")
        rec.clear()
        assert len(rec) == 0
        assert rec.sequence == 0

    def test_global_recorder_identity(self):
        original = get_flight_recorder()
        try:
            mine = set_flight_recorder(FlightRecorder())
            assert get_flight_recorder() is mine
        finally:
            set_flight_recorder(original)


class TestDump:
    def test_no_env_means_no_dump(self, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        assert flight_dir() is None
        assert dump_flight("test") is None

    def test_dump_writes_valid_chrome_trace(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        original = get_flight_recorder()
        try:
            rec = set_flight_recorder(FlightRecorder())
            rec.record("batch.execute", category="service", batch=8)
            rec.record("drift", category="adaptive", ratio=2.5)
            path = dump_flight("drift-detected", signature="abc123")
        finally:
            set_flight_recorder(original)
        assert path is not None and os.path.exists(path)
        assert "drift-detected" in os.path.basename(path)
        assert validate_chrome_trace_file(path) == []
        document = json.load(open(path))
        other = document["otherData"]
        assert other["flight_reason"] == "drift-detected"
        assert other["flight_attrs"]["signature"] == "abc123"
        assert other["pid"] == os.getpid()
        assert "metrics" in other
        names = {e["name"] for e in document["traceEvents"]}
        assert {"batch.execute", "drift"} <= names

    def test_dump_includes_extra_processes(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        original = get_flight_recorder()
        try:
            set_flight_recorder(FlightRecorder())
            dead = [
                SpanRecord(
                    name="worker.request",
                    category="service",
                    start=0.0,
                    end=0.001,
                    thread_id=1,
                    depth=0,
                    attrs={"req_id": 7},
                )
            ]
            path = dump_flight(
                "worker-death", extra_processes={"shard-w0#0": dead}
            )
        finally:
            set_flight_recorder(original)
        document = json.load(open(path))
        assert validate_chrome_trace(document) == []
        process_names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "shard-w0#0" in process_names
        assert any(
            e["name"] == "worker.request" for e in document["traceEvents"]
        )

    def test_reason_sanitized_in_filename(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        original = get_flight_recorder()
        try:
            set_flight_recorder(FlightRecorder())
            path = dump_flight("weird/reason with spaces!")
        finally:
            set_flight_recorder(original)
        base = os.path.basename(path)
        assert "/" not in base.replace(str(tmp_path), "")
        assert " " not in base
