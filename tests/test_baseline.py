"""Tests for the oneDNN-primitives-style baseline executor."""

import numpy as np
import pytest

from repro import DType, GraphBuilder, XEON_8358
from repro.baseline import BaselineExecutor
from repro.graph_ir.reference import evaluate_graph
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)


def mlp_graph():
    b = GraphBuilder("m")
    x = b.input("x", DType.f32, (32, 64))
    w0 = b.constant("w0", dtype=DType.f32, shape=(64, 96))
    w1 = b.constant("w1", dtype=DType.f32, shape=(96, 32))
    t = b.relu(b.matmul(x, w0))
    b.output(b.relu(b.matmul(t, w1)))
    return b.finish()


class TestPrimitivePlanning:
    def test_mlp_maps_to_matmul_primitives_with_postops(self):
        executor = BaselineExecutor(mlp_graph(), XEON_8358)
        names = executor.plan.describe()
        assert len(names) == 2
        assert all("matmul" in n and "+1post" in n for n in names)

    def test_softmax_stays_separate(self):
        """The baseline's key limitation: softmax cannot fuse."""
        executor = BaselineExecutor(
            build_mha_graph("MHA_1", 32, DType.f32), XEON_8358
        )
        kinds = [p.kind for p in executor.plan.primitives]
        assert "softmax" in kinds
        assert kinds.count("matmul") == 2

    def test_int8_requant_chain_fuses_as_postops(self):
        executor = BaselineExecutor(
            build_mlp_graph("MLP_1", 32, DType.s8), XEON_8358
        )
        # Three matmul primitives; the int8 requant chains ride as post-ops,
        # so no standalone element-wise primitives remain.
        kinds = [p.kind for p in executor.plan.primitives]
        assert kinds.count("matmul") == 3
        assert kinds.count("eltwise") == 0

    def test_weight_preprocessing_split_off(self):
        executor = BaselineExecutor(
            build_mlp_graph("MLP_1", 32, DType.s8), XEON_8358
        )
        assert executor.init_graph is not None

    def test_value_needed_as_output_not_overfused(self):
        b = GraphBuilder("m")
        x = b.input("x", DType.f32, (16, 16))
        w = b.constant("w", dtype=DType.f32, shape=(16, 16))
        y = b.matmul(x, w)
        b.output(y)  # raw matmul result must materialize
        b.output(b.relu(y))
        executor = BaselineExecutor(b.finish(), XEON_8358)
        names = executor.plan.describe()
        assert any("matmul" in n and "post" not in n for n in names)


class TestNumericExecution:
    def test_fp32_mlp_matches_reference(self):
        graph = mlp_graph()
        rng = np.random.RandomState(0)
        inputs = {
            "x": rng.randn(32, 64).astype(np.float32),
            "w0": rng.randn(64, 96).astype(np.float32) * 0.1,
            "w1": rng.randn(96, 32).astype(np.float32) * 0.1,
        }
        inputs = {k: v.astype(np.float32) for k, v in inputs.items()}
        expected = evaluate_graph(mlp_graph(), inputs)
        executor = BaselineExecutor(graph, XEON_8358)
        out = executor.execute(inputs)
        np.testing.assert_allclose(
            list(out.values())[0], list(expected.values())[0], rtol=1e-5
        )

    def test_mha_fp32(self):
        graph = build_mha_graph("MHA_1", 32, DType.f32)
        inputs = make_mha_inputs("MHA_1", 32, DType.f32)
        executor = BaselineExecutor(
            build_mha_graph("MHA_1", 32, DType.f32), XEON_8358
        )
        out = list(executor.execute(inputs).values())[0]
        expected = list(evaluate_graph(graph, inputs).values())[0]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_weight_cache_used_on_second_run(self):
        executor = BaselineExecutor(
            build_mlp_graph("MLP_1", 32, DType.s8), XEON_8358
        )
        inputs = make_mlp_inputs("MLP_1", 32, DType.s8)
        first = executor.execute(inputs)
        second = executor.execute(inputs)
        np.testing.assert_array_equal(
            list(first.values())[0], list(second.values())[0]
        )


class TestSpecs:
    def test_every_primitive_pays_api_and_launch(self):
        executor = BaselineExecutor(
            build_mha_graph("MHA_1", 32, DType.f32), XEON_8358
        )
        specs, _ = executor.specs()
        assert all(s.api_calls == 1 for s in specs)
        assert all(s.launches == 1 for s in specs)

    def test_softmax_spec_has_extra_pass(self):
        executor = BaselineExecutor(
            build_mha_graph("MHA_1", 32, DType.f32), XEON_8358
        )
        softmax = next(
            s for s in specs_of(executor) if "softmax" in s.name
        )
        # Two read passes over the attention tensor.
        big_reads = [r for r in softmax.reads if r.nbytes > 1 << 20]
        assert len(big_reads) == 2

    def test_constant_weights_in_warm_set(self):
        executor = BaselineExecutor(
            build_mlp_graph("MLP_1", 32, DType.f32), XEON_8358
        )
        _, warm = executor.specs()
        assert len(warm) >= 3  # three weights

    def test_matmul_spec_efficiency_below_one(self):
        executor = BaselineExecutor(mlp_graph(), XEON_8358)
        specs, _ = executor.specs()
        for spec in specs:
            assert 0 < spec.efficiency < 1


def specs_of(executor):
    specs, _ = executor.specs()
    return specs
