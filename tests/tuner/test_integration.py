"""The tuner wired into compile_graph: modes, warm cache, acceptance.

The PR's acceptance criteria live here:

* on the Figure 7 matmul shapes, model-based tuning finds configurations
  whose estimated cost is <= the expert heuristic's for *every* shape;
* a warmed TuningCache makes the second ``compile_graph`` skip search
  entirely (observed through tuning hooks + compile_counter).
"""

import numpy as np
import pytest

from repro import (
    CompilerOptions,
    DType,
    GraphBuilder,
    compile_counter,
    compile_graph,
)
from repro.microkernel.machine import XEON_8358
from repro.tuner import (
    MatmulTuner,
    TuningCache,
    add_tuning_hook,
    remove_tuning_hook,
    reset_tuning_caches,
    tuning_key,
)
from repro.workloads import individual_matmul_shapes

MACHINE = XEON_8358


@pytest.fixture(autouse=True)
def fresh_caches():
    reset_tuning_caches()
    yield
    reset_tuning_caches()


@pytest.fixture
def tuning_log():
    results = []
    add_tuning_hook(results.append)
    yield results
    remove_tuning_hook(results.append)


def mlp_graph(m=128, k=256, n=128):
    b = GraphBuilder(f"mlp_{m}x{k}x{n}")
    x = b.input("x", DType.f32, (m, k))
    w = b.constant("w", dtype=DType.f32, shape=(k, n))
    b.output(b.relu(b.matmul(x, w)))
    return b.finish()


class TestFig7Acceptance:
    @pytest.mark.parametrize("dtype", [DType.f32, DType.s8])
    def test_tuned_never_worse_than_heuristic(self, dtype):
        tuner = MatmulTuner(MACHINE, mode="model", budget=96)
        for shape in individual_matmul_shapes():
            result = tuner.tune(shape.m, shape.n, shape.k, dtype)
            assert result.cost <= result.heuristic_cost, (
                shape.name,
                result.cost,
                result.heuristic_cost,
            )

    def test_some_shape_strictly_improves(self):
        # Tuning that never beats the heuristic anywhere would be
        # indistinguishable from a no-op.
        tuner = MatmulTuner(MACHINE, mode="model", budget=96)
        improved = 0
        for shape in individual_matmul_shapes():
            result = tuner.tune(shape.m, shape.n, shape.k, DType.f32)
            if result.cost < result.heuristic_cost:
                improved += 1
        assert improved > 0


class TestWarmCacheSkipsSearch:
    def test_second_compile_serves_from_cache(self, tuning_log):
        options = CompilerOptions(tuning="model", tuning_budget=64)
        with compile_counter() as counter:
            compile_graph(mlp_graph(), options=options)
            first = [r.source for r in tuning_log]
            tuning_log.clear()
            compile_graph(mlp_graph(), options=options)
            second = [r.source for r in tuning_log]
        # Both calls really compiled (no partition-level dedup involved).
        assert counter.count == 2
        assert first and "search" in first
        assert second and all(source == "cache" for source in second)
        assert all(r.evaluations == 0 for r in tuning_log)

    def test_warm_cache_persists_across_processes(self, tmp_path, tuning_log):
        # Simulate a restart: same on-disk cache, fresh registry.
        path = str(tmp_path / "tune.json")
        options = CompilerOptions(
            tuning="model", tuning_cache_path=path, tuning_budget=64
        )
        compile_graph(mlp_graph(), options=options)
        assert any(r.source == "search" for r in tuning_log)
        reset_tuning_caches()  # drop in-memory state, keep the file
        tuning_log.clear()
        compile_graph(mlp_graph(), options=options)
        assert tuning_log and all(r.source == "cache" for r in tuning_log)


class TestModes:
    def test_cached_only_falls_back_to_heuristic(self, tuning_log):
        options = CompilerOptions(tuning="cached-only")
        compile_graph(mlp_graph(), options=options)
        assert tuning_log and all(
            r.source == "heuristic" for r in tuning_log
        )
        # Nothing was stored: a later cached-only compile still misses.
        tuning_log.clear()
        compile_graph(mlp_graph(), options=options)
        assert all(r.source == "heuristic" for r in tuning_log)

    def test_cached_only_serves_warm_entries(self, tuning_log):
        model = CompilerOptions(tuning="model", tuning_budget=64)
        compile_graph(mlp_graph(), options=model)
        tuning_log.clear()
        compile_graph(
            mlp_graph(), options=CompilerOptions(tuning="cached-only")
        )
        assert tuning_log and all(r.source == "cache" for r in tuning_log)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            compile_graph(
                mlp_graph(), options=CompilerOptions(tuning="aggressive")
            )

    def test_off_mode_makes_no_tuning_decisions(self, tuning_log):
        compile_graph(mlp_graph(), options=CompilerOptions())
        assert tuning_log == []


class TestTunedExecution:
    def test_tuned_partition_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((128, 256)).astype(np.float32)
        w = rng.standard_normal((256, 128)).astype(np.float32)
        partition = compile_graph(
            mlp_graph(),
            options=CompilerOptions(tuning="model", tuning_budget=64),
        )
        got = partition.execute({"x": x, "w": w})
        got = list(got.values())[0] if isinstance(got, dict) else got
        want = np.maximum(x @ w, 0)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_forced_selector_overrides_tuning(self, tuning_log):
        # An explicit param_selector wins over options.tuning.
        from repro.templates.heuristics import select_matmul_params

        calls = []

        def spy(m, n, k, dtype, machine, batch=1, constraints=None):
            calls.append((m, n, k))
            return select_matmul_params(
                m, n, k, dtype, machine, batch=batch, constraints=constraints
            )

        compile_graph(
            mlp_graph(),
            options=CompilerOptions(tuning="model"),
            param_selector=spy,
        )
        assert calls
        assert tuning_log == []


class TestMeasuredMode:
    @pytest.mark.slow
    def test_measured_tuning_compiles_and_stores(self, tuning_log):
        tuner = MatmulTuner(
            MACHINE,
            cache=TuningCache(),
            mode="measured",
            budget=24,
            measure_top_k=2,
            measure_repeats=1,
        )
        result = tuner.tune(64, 64, 64, DType.f32)
        assert result.source == "search"
        assert result.evaluator == "measured"
        key = tuning_key(64, 64, 64, DType.f32, MACHINE)
        stored = tuner.cache.get(key)
        assert stored is not None and stored.evaluator == "measured"
        assert stored.measured_seconds > 0

    @pytest.mark.slow
    def test_measured_mode_through_compile_graph(self, tuning_log):
        options = CompilerOptions(
            tuning="measured", tuning_budget=16
        )
        partition = compile_graph(mlp_graph(64, 64, 64), options=options)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 64)).astype(np.float32)
        w = rng.standard_normal((64, 64)).astype(np.float32)
        got = partition.execute({"x": x, "w": w})
        got = list(got.values())[0] if isinstance(got, dict) else got
        np.testing.assert_allclose(
            got, np.maximum(x @ w, 0), rtol=1e-4, atol=1e-4
        )
        assert any(r.evaluator == "measured" for r in tuning_log)
