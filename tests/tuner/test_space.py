"""TuningSpace: enumeration, sampling, neighborhoods."""

import random

import pytest

from repro.dtypes import DType
from repro.errors import HeuristicError
from repro.microkernel.machine import XEON_8358
from repro.templates import validity
from repro.templates.heuristics import HeuristicConstraints
from repro.templates.params import TemplateKind
from repro.tuner import TuningSpace

MACHINE = XEON_8358


def small_space(**kw):
    return TuningSpace(128, 128, 128, DType.f32, MACHINE, **kw)


class TestEnumeration:
    def test_candidates_are_unique(self):
        space = small_space()
        seen = set()
        for params in space.candidates():
            key = (
                params.m, params.n, params.k, params.mb, params.nb,
                params.kb, params.bs, params.mpn, params.npn, params.kpn,
                params.kind, params.l2_chunk,
            )
            assert key not in seen
            seen.add(key)
        assert len(seen) == space.size()

    def test_enumeration_is_deterministic(self):
        a = [p.describe() for p in small_space().candidates()]
        b = [p.describe() for p in small_space().candidates()]
        assert a == b

    def test_degenerate_sizes_raise(self):
        with pytest.raises(HeuristicError):
            TuningSpace(0, 128, 128, DType.f32, MACHINE)
        with pytest.raises(HeuristicError):
            TuningSpace(128, 128, 128, DType.f32, MACHINE, batch=0)

    def test_extended_grid_is_strictly_larger(self):
        narrow = TuningSpace(
            512, 512, 512, DType.f32, MACHINE, extended=False
        ).size()
        wide = TuningSpace(
            512, 512, 512, DType.f32, MACHINE, extended=True
        ).size()
        assert wide > narrow

    def test_single_row_problem_offers_k_slicing(self):
        # m=1: the m x n decomposition can't fill 32 cores, so the space
        # must include K_SLICED variants (the paper's Template 2).
        space = TuningSpace(1, 256, 4096, DType.f32, MACHINE)
        kinds = {p.kind for p in space.candidates()}
        assert TemplateKind.K_SLICED in kinds


class TestSampling:
    def test_sample_is_deterministic_per_seed(self):
        space = small_space()
        a = [p.describe() for p in space.sample(random.Random(7), 10)]
        b = [p.describe() for p in space.sample(random.Random(7), 10)]
        c = [p.describe() for p in space.sample(random.Random(8), 10)]
        assert a == b
        assert a != c

    def test_sample_returns_whole_space_when_small(self):
        space = TuningSpace(
            32, 32, 32, DType.f32, MACHINE, extended=False
        )
        size = space.size()
        sample = space.sample(random.Random(0), size + 50)
        assert len(sample) == size


class TestNeighbors:
    def test_neighbors_are_valid_and_distinct(self):
        space = small_space()
        start = space.heuristic_params()
        neighbors = space.neighbors(start)
        assert neighbors
        for params in neighbors:
            assert validity.check_params(params, DType.f32, MACHINE) == []
            assert params != start

    def test_neighbors_respect_pins(self):
        constraints = HeuristicConstraints(require_mb=32)
        space = TuningSpace(
            256, 256, 256, DType.f32, MACHINE, constraints=constraints
        )
        start = space.heuristic_params()
        for params in space.neighbors(start):
            assert params.mb == 32
