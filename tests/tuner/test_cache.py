"""TuningCache: keys, disk round-trips, corruption recovery."""

import json
import os

from repro.dtypes import DType
from repro.microkernel.machine import XEON_8358
from repro.templates.heuristics import HeuristicConstraints, select_matmul_params
from repro.tuner import (
    TUNING_CACHE_SCHEMA_VERSION,
    TuningCache,
    TuningRecord,
    get_tuning_cache,
    machine_fingerprint,
    reset_tuning_caches,
    tuning_key,
)

MACHINE = XEON_8358


def record(m=256, n=256, k=256):
    params = select_matmul_params(m, n, k, DType.f32, MACHINE)
    return TuningRecord(
        params=params, cost=1000.0, heuristic_cost=1200.0, evaluations=42
    )


class TestKeys:
    def test_key_is_stable(self):
        a = tuning_key(256, 256, 256, DType.f32, MACHINE)
        b = tuning_key(256, 256, 256, DType.f32, MACHINE)
        assert a == b and len(a) == 64

    def test_key_depends_on_problem(self):
        base = tuning_key(256, 256, 256, DType.f32, MACHINE)
        assert base != tuning_key(256, 256, 512, DType.f32, MACHINE)
        assert base != tuning_key(256, 256, 256, DType.bf16, MACHINE)
        assert base != tuning_key(256, 256, 256, DType.f32, MACHINE, batch=4)

    def test_key_depends_on_constraints(self):
        base = tuning_key(256, 256, 256, DType.f32, MACHINE)
        pinned = tuning_key(
            256, 256, 256, DType.f32, MACHINE,
            constraints=HeuristicConstraints(require_mb=32),
        )
        assert base != pinned
        # Default constraints hash like no constraints.
        assert base == tuning_key(
            256, 256, 256, DType.f32, MACHINE,
            constraints=HeuristicConstraints(),
        )

    def test_key_depends_on_machine(self):
        import dataclasses

        other = dataclasses.replace(MACHINE, num_cores=8)
        assert tuning_key(256, 256, 256, DType.f32, MACHINE) != tuning_key(
            256, 256, 256, DType.f32, other
        )
        assert machine_fingerprint(MACHINE) != machine_fingerprint(other)


class TestRoundTrip:
    def test_disk_round_trip(self, tmp_path):
        path = str(tmp_path / "tune.json")
        key = tuning_key(256, 256, 256, DType.f32, MACHINE)
        cache = TuningCache(path)
        rec = record()
        cache.put(key, rec)
        # A fresh instance reads the same entry back from disk.
        reloaded = TuningCache(path)
        got = reloaded.get(key)
        assert got is not None
        assert got.params == rec.params
        assert got.cost == rec.cost
        assert got.heuristic_cost == rec.heuristic_cost
        assert got.evaluations == rec.evaluations

    def test_in_memory_cache_has_no_file(self):
        cache = TuningCache()
        cache.put("k", record())
        assert cache.get("k") is not None
        assert cache.path is None

    def test_stats_count_hits_and_misses(self):
        cache = TuningCache()
        assert cache.get("absent") is None
        cache.put("k", record())
        cache.get("k")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "tune.json")
        cache = TuningCache(path)
        for i in range(5):
            cache.put(f"k{i}", record())
        leftovers = [f for f in os.listdir(tmp_path) if f != "tune.json"]
        assert leftovers == []


class TestCorruptionRecovery:
    def test_corrupt_json_starts_empty(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text("{ this is not json", encoding="utf-8")
        cache = TuningCache(str(path))
        assert len(cache) == 0
        assert cache.stats.load_errors == 1
        # The cache is still usable and overwrites the corrupt file.
        cache.put("k", record())
        assert len(TuningCache(str(path))) == 1

    def test_partial_record_starts_empty(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text(
            json.dumps(
                {
                    "version": TUNING_CACHE_SCHEMA_VERSION,
                    "entries": {"k": {"params": {"m": 64}}},
                }
            ),
            encoding="utf-8",
        )
        cache = TuningCache(str(path))
        assert len(cache) == 0
        assert cache.stats.load_errors == 1

    def test_version_mismatch_starts_empty(self, tmp_path):
        path = tmp_path / "tune.json"
        good = TuningCache(str(path))
        good.put("k", record())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = TUNING_CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        stale = TuningCache(str(path))
        assert len(stale) == 0

    def test_wrong_root_type_starts_empty(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert len(TuningCache(str(path))) == 0


class TestRegistry:
    def test_same_path_shares_instance(self, tmp_path):
        reset_tuning_caches()
        try:
            path = str(tmp_path / "t.json")
            assert get_tuning_cache(path) is get_tuning_cache(path)
            assert get_tuning_cache() is get_tuning_cache(None)
            assert get_tuning_cache(path) is not get_tuning_cache()
        finally:
            reset_tuning_caches()


class TestRetuneUpdate:
    def test_update_inserts_when_absent(self):
        cache = TuningCache()
        assert cache.update("k", record()) is False
        assert cache.get("k") is not None
        assert cache.stats.superseded_by_retune == 0

    def test_update_supersedes_and_counts(self, tmp_path):
        path = str(tmp_path / "tune.json")
        cache = TuningCache(path)
        key = tuning_key(256, 256, 256, DType.f32, MACHINE)
        cache.put(key, record())
        newer = TuningRecord(
            params=record().params,
            cost=800.0,
            heuristic_cost=1200.0,
            evaluations=7,
        )
        assert cache.update(key, newer) is True
        assert cache.get(key).cost == 800.0
        assert cache.stats.superseded_by_retune == 1
        # The rewrite is durable: a fresh instance sees the new record.
        assert TuningCache(path).get(key).cost == 800.0

    def test_update_atomic_rewrite_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "tune.json")
        cache = TuningCache(path)
        cache.put("k", record())
        for _ in range(3):
            cache.update("k", record())
        leftovers = [f for f in os.listdir(tmp_path) if f != "tune.json"]
        assert leftovers == []
        assert cache.stats.superseded_by_retune == 3
