"""Search strategies: determinism, budgets, never-worse-than-seed."""

from repro.dtypes import DType
from repro.microkernel.machine import XEON_8358
from repro.tuner import (
    ExhaustiveSearch,
    ModelEvaluator,
    RandomGreedySearch,
    TuningSpace,
    choose_strategy,
)

MACHINE = XEON_8358


def make(m=256, n=256, k=256, dtype=DType.f32):
    space = TuningSpace(m, n, k, dtype, MACHINE)
    evaluator = ModelEvaluator(m, n, k, dtype, MACHINE)
    return space, evaluator


class TestExhaustive:
    def test_finds_global_optimum_of_small_space(self):
        space = TuningSpace(64, 64, 64, DType.f32, MACHINE, extended=False)
        evaluator = ModelEvaluator(64, 64, 64, DType.f32, MACHINE)
        outcome = ExhaustiveSearch().run(space, evaluator)
        best = min(evaluator.score(p) for p in space.candidates())
        assert outcome.cost == best
        assert outcome.strategy == "exhaustive"

    def test_budget_caps_evaluations(self):
        space, evaluator = make()
        outcome = ExhaustiveSearch(budget=25).run(space, evaluator)
        assert outcome.evaluations <= 25


class TestRandomGreedy:
    def test_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            space, evaluator = make()
            outcome = RandomGreedySearch(seed=3, samples=24, budget=96).run(
                space, evaluator
            )
            results.append((outcome.params, outcome.cost, outcome.evaluations))
        assert results[0] == results[1]

    def test_different_seeds_may_differ_but_both_valid(self):
        space, evaluator = make()
        a = RandomGreedySearch(seed=0, samples=16, budget=64).run(
            space, evaluator
        )
        space, evaluator = make()
        b = RandomGreedySearch(seed=99, samples=16, budget=64).run(
            space, evaluator
        )
        assert a.cost > 0 and b.cost > 0

    def test_never_worse_than_seed_candidate(self):
        # The heuristic pick is injected as a seed, so the search result
        # must score <= the heuristic under the same evaluator.
        for m, n, k in [(256, 256, 256), (64, 1024, 1024), (1, 512, 4096)]:
            space = TuningSpace(m, n, k, DType.bf16, MACHINE)
            evaluator = ModelEvaluator(m, n, k, DType.bf16, MACHINE)
            heuristic = space.heuristic_params()
            heuristic_cost = evaluator.score(heuristic)
            outcome = RandomGreedySearch(seed=0, samples=32, budget=128).run(
                space, evaluator, seeds=[heuristic]
            )
            assert outcome.cost <= heuristic_cost

    def test_budget_is_respected(self):
        space, evaluator = make()
        outcome = RandomGreedySearch(seed=0, samples=200, budget=50).run(
            space, evaluator
        )
        assert outcome.evaluations <= 50

    def test_leaderboard_is_sorted_and_top_works(self):
        space, evaluator = make()
        outcome = RandomGreedySearch(seed=0, samples=32, budget=128).run(
            space, evaluator
        )
        costs = [cost for cost, _ in outcome.leaderboard]
        assert costs == sorted(costs)
        assert outcome.top(3) == [p for _, p in outcome.leaderboard[:3]]


class TestChooseStrategy:
    def test_small_space_gets_exhaustive(self):
        space = TuningSpace(32, 32, 32, DType.f32, MACHINE, extended=False)
        assert isinstance(
            choose_strategy(space, budget=10_000), ExhaustiveSearch
        )

    def test_large_space_gets_random_greedy(self):
        space = TuningSpace(1024, 1024, 1024, DType.f32, MACHINE)
        strategy = choose_strategy(space, budget=100, seed=5)
        assert isinstance(strategy, RandomGreedySearch)
        assert strategy.seed == 5
