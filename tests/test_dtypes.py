"""Unit tests for repro.dtypes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dtypes import (
    DType,
    accumulator_dtype,
    dequantize_array,
    from_numpy,
    quantize_array,
)
from repro.errors import DataTypeError


class TestDType:
    def test_sizes(self):
        assert DType.f32.size == 4
        assert DType.bf16.size == 2
        assert DType.s8.size == 1
        assert DType.u8.size == 1
        assert DType.s32.size == 4
        assert DType.s64.size == 8

    def test_floating_predicate(self):
        assert DType.f32.is_floating
        assert DType.bf16.is_floating
        assert not DType.s8.is_floating

    def test_low_precision_predicate(self):
        assert DType.s8.is_low_precision
        assert DType.u8.is_low_precision
        assert not DType.s32.is_low_precision
        assert not DType.f32.is_low_precision

    def test_numpy_roundtrip(self):
        for dtype in (DType.f32, DType.s32, DType.s8, DType.u8, DType.s64):
            assert from_numpy(dtype.to_numpy()) == dtype

    def test_bf16_stored_as_f32(self):
        assert DType.bf16.to_numpy() == np.dtype(np.float32)

    def test_from_numpy_unknown(self):
        with pytest.raises(DataTypeError):
            from_numpy(np.complex64)


class TestAccumulator:
    def test_int8_accumulates_in_s32(self):
        assert accumulator_dtype(DType.s8) == DType.s32
        assert accumulator_dtype(DType.u8) == DType.s32

    def test_float_accumulates_in_f32(self):
        assert accumulator_dtype(DType.f32) == DType.f32
        assert accumulator_dtype(DType.bf16) == DType.f32

    def test_invalid(self):
        with pytest.raises(DataTypeError):
            accumulator_dtype(DType.boolean)


class TestQuantization:
    def test_quantize_basic(self):
        x = np.array([0.0, 0.1, -0.1, 1.0], dtype=np.float32)
        q = quantize_array(x, scale=0.1, zero_point=0, dtype=DType.s8)
        assert q.dtype == np.int8
        np.testing.assert_array_equal(q, [0, 1, -1, 10])

    def test_quantize_zero_point(self):
        x = np.array([0.0, 0.5], dtype=np.float32)
        q = quantize_array(x, scale=0.5, zero_point=128, dtype=DType.u8)
        np.testing.assert_array_equal(q, [128, 129])

    def test_quantize_saturates(self):
        x = np.array([1000.0, -1000.0], dtype=np.float32)
        q = quantize_array(x, scale=1.0, zero_point=0, dtype=DType.s8)
        np.testing.assert_array_equal(q, [127, -128])

    def test_quantize_requires_low_precision_dtype(self):
        with pytest.raises(DataTypeError):
            quantize_array(np.zeros(3), scale=1.0, zero_point=0, dtype=DType.f32)

    def test_dequantize(self):
        q = np.array([0, 10, -10], dtype=np.int8)
        x = dequantize_array(q, scale=0.5, zero_point=0)
        assert x.dtype == np.float32
        np.testing.assert_allclose(x, [0.0, 5.0, -5.0])

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, width=32),
            min_size=1,
            max_size=64,
        ),
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(min_value=-8, max_value=8),
    )
    def test_roundtrip_error_bounded_by_scale(self, values, scale, zp):
        """Quantize-dequantize error is at most scale/2 for in-range values."""
        x = np.array(values, dtype=np.float32)
        # Keep values inside the representable range for this scale/zp.
        lo = (-128 - zp + 1) * scale
        hi = (127 - zp - 1) * scale
        x = np.clip(x, lo, hi)
        q = quantize_array(x, scale=scale, zero_point=zp, dtype=DType.s8)
        back = dequantize_array(q, scale=scale, zero_point=zp)
        assert np.all(np.abs(back - x) <= scale / 2 + 1e-6)
