"""Schema-level tests for the op registry (inference + reference kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dtypes import DType
from repro.errors import (
    DataTypeError,
    ShapeInferenceError,
    UnsupportedOpError,
)
from repro.graph_ir.op_registry import (
    OP_REGISTRY,
    broadcast_shapes,
    get_schema,
    matmul_output_spec,
)


class TestRegistry:
    def test_unknown_kind(self):
        with pytest.raises(UnsupportedOpError):
            get_schema("frobnicate")

    def test_expected_kinds_present(self):
        for kind in (
            "matmul", "relu", "add", "div", "reduce_sum", "reduce_max",
            "reorder", "transpose", "reshape", "broadcast", "cast",
            "softmax", "gelu", "silu", "quantize", "dequantize",
            "layernorm", "batchnorm_inference", "conv2d", "im2col",
        ):
            assert kind in OP_REGISTRY, kind

    def test_category_flags_consistent(self):
        for schema in OP_REGISTRY.values():
            assert not (schema.is_elementwise and schema.is_reduction)


class TestBroadcast:
    def test_valid(self):
        assert broadcast_shapes((4, 1), (1, 8)) == (4, 8)
        assert broadcast_shapes((8,), (2, 8)) == (2, 8)

    def test_invalid(self):
        with pytest.raises(ShapeInferenceError):
            broadcast_shapes((3,), (4,))


class TestMatmulSpec:
    def test_batch_broadcast(self):
        dtype, shape = matmul_output_spec(
            (DType.f32, (5, 1, 4, 8)), (DType.f32, (3, 8, 2))
        )
        assert shape == (5, 3, 4, 2)
        assert dtype == DType.f32

    def test_transposes(self):
        _, shape = matmul_output_spec(
            (DType.f32, (8, 4)),
            (DType.f32, (2, 8)),
            transpose_a=True,
            transpose_b=True,
        )
        assert shape == (4, 2)

    def test_one_d_rejected(self):
        with pytest.raises(ShapeInferenceError):
            matmul_output_spec((DType.f32, (8,)), (DType.f32, (8, 2)))

    def test_int8_times_int8_is_s32(self):
        dtype, _ = matmul_output_spec((DType.s8, (4, 8)), (DType.s8, (8, 2)))
        assert dtype == DType.s32

    def test_bf16_accumulates_f32(self):
        dtype, _ = matmul_output_spec(
            (DType.bf16, (4, 8)), (DType.bf16, (8, 2))
        )
        assert dtype == DType.f32


class TestElementwiseKernels:
    @pytest.mark.parametrize(
        "kind,fn",
        [
            ("relu", lambda x: np.maximum(x, 0)),
            ("neg", lambda x: -x),
            ("abs", np.abs),
            ("square", np.square),
            ("round", np.rint),
        ],
    )
    def test_unary(self, kind, fn):
        schema = get_schema(kind)
        x = np.linspace(-2, 2, 16).astype(np.float32)
        out = schema.reference([x], {})[0]
        np.testing.assert_allclose(out, fn(x).astype(np.float32), rtol=1e-6)

    def test_clip(self):
        schema = get_schema("clip")
        x = np.array([-5, 0, 5], dtype=np.float32)
        out = schema.reference([x], {"min": -1.0, "max": 1.0})[0]
        np.testing.assert_array_equal(out, [-1, 0, 1])

    def test_erf_matches_scipy(self):
        from scipy.special import erf

        schema = get_schema("erf")
        x = np.linspace(-3, 3, 32).astype(np.float32)
        out = schema.reference([x], {})[0]
        np.testing.assert_allclose(out, erf(x), atol=1e-6)

    def test_binary_dtype_preserved(self):
        schema = get_schema("add")
        x = np.ones(4, dtype=np.int32)
        out = schema.reference([x, x], {})[0]
        assert out.dtype == np.int32

    def test_cast_saturates_to_int8(self):
        schema = get_schema("cast")
        x = np.array([300.0, -300.0, 1.5], dtype=np.float32)
        out = schema.reference([x], {"dtype": DType.s8})[0]
        np.testing.assert_array_equal(out, [127, -128, 2])

    def test_cast_requires_dtype_attr(self):
        schema = get_schema("cast")
        with pytest.raises(DataTypeError):
            schema.infer([(DType.f32, (4,))], {})


class TestReductionKernels:
    def test_axis_normalization(self):
        schema = get_schema("reduce_sum")
        specs = schema.infer(
            [(DType.f32, (2, 3, 4))], {"axis": -2, "keepdims": True}
        )
        assert specs[0][1] == (2, 1, 4)

    def test_multi_axis(self):
        schema = get_schema("reduce_max")
        specs = schema.infer(
            [(DType.f32, (2, 3, 4))], {"axis": (0, 2), "keepdims": False}
        )
        assert specs[0][1] == (3,)

    def test_duplicate_axes_rejected(self):
        schema = get_schema("reduce_sum")
        with pytest.raises(ShapeInferenceError):
            schema.infer([(DType.f32, (2, 3))], {"axis": (0, 0)})

    def test_reduce_mean_needs_float(self):
        schema = get_schema("reduce_mean")
        with pytest.raises(DataTypeError):
            schema.infer([(DType.s32, (4,))], {"axis": 0})


class TestDataMovement:
    def test_reshape_element_count_checked(self):
        schema = get_schema("reshape")
        with pytest.raises(ShapeInferenceError):
            schema.infer([(DType.f32, (4, 4))], {"shape": (5, 3)})

    def test_transpose_perm_checked(self):
        schema = get_schema("transpose")
        with pytest.raises(ShapeInferenceError):
            schema.infer([(DType.f32, (4, 4))], {"perm": (0, 0)})

    def test_broadcast_target_checked(self):
        schema = get_schema("broadcast")
        with pytest.raises(ShapeInferenceError):
            schema.infer([(DType.f32, (3,))], {"shape": (4, 5)})

    def test_reorder_pad_to_dominates(self):
        schema = get_schema("reorder")
        with pytest.raises(ShapeInferenceError):
            schema.infer([(DType.f32, (8, 8))], {"pad_to": (4, 8)})

    def test_reorder_pad_to_reference_pads(self):
        schema = get_schema("reorder")
        x = np.ones((2, 2), dtype=np.float32)
        out = schema.reference([x], {"pad_to": (4, 4)})[0]
        assert out.shape == (4, 4)
        assert out.sum() == 4.0


class TestQuantizeSchemas:
    def test_quantize_requires_float_input(self):
        schema = get_schema("quantize")
        with pytest.raises(DataTypeError):
            schema.infer([(DType.s8, (4,))], {"dtype": DType.u8})

    def test_quantize_target_checked(self):
        schema = get_schema("quantize")
        with pytest.raises(DataTypeError):
            schema.infer([(DType.f32, (4,))], {"dtype": DType.f32})

    def test_dequantize_requires_int8(self):
        schema = get_schema("dequantize")
        with pytest.raises(DataTypeError):
            schema.infer([(DType.f32, (4,))], {})

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=2.0),
        st.integers(min_value=-64, max_value=64),
    )
    def test_quantize_reference_in_range(self, scale, zp):
        schema = get_schema("quantize")
        x = np.linspace(-100, 100, 64).astype(np.float32)
        out = schema.reference(
            [x], {"scale": scale, "zero_point": zp, "dtype": DType.s8}
        )[0]
        assert out.dtype == np.int8  # clipping guaranteed by dtype
