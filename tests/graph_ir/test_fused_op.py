"""Tests for the FusedMatmul structure (fused_op.py)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.graph_ir import GraphBuilder
from repro.graph_ir.fused_op import (
    FusedMatmul,
    FusionPlan,
    OperandMode,
    StandaloneOp,
)
from repro.templates.params import MatmulParams


def params():
    return MatmulParams(
        m=64, n=64, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=2
    )


def softmax_fused():
    b = GraphBuilder()
    x = b.input("x", DType.f32, (64, 64))
    w = b.input("w", DType.f32, (64, 64))
    y = b.matmul(x, w)
    m = b.reduce_max(y, axis=-1)
    e = b.exp(b.sub(y, m))
    s = b.reduce_sum(e, axis=-1)
    out = b.div(e, s)
    b.output(out)
    graph = b.finish()
    return graph, FusedMatmul(
        name="f",
        matmul=graph.ops[0],
        post_ops=graph.ops[1:],
        params=MatmulParams(
            m=64, n=64, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=1
        ),
    )


class TestStructure:
    def test_output_is_last_post_op(self):
        graph, fused = softmax_fused()
        assert fused.output.id == graph.ops[-1].outputs[0].id

    def test_output_without_post_ops(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(name="f", matmul=graph.ops[0], params=params())
        assert fused.output.id == y.id

    def test_external_inputs_order_and_dedup(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        bias = b.input("bias", DType.f32, (64,))
        y = b.matmul(x, w)
        y = b.add(y, bias)
        y = b.add(y, bias)  # bias used twice: deduped
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="f",
            matmul=graph.ops[0],
            post_ops=graph.ops[1:],
            params=params(),
        )
        ext = fused.external_inputs()
        assert [t.id for t in ext] == [x.id, w.id, bias.id]

    def test_has_n_reduction(self):
        _, fused = softmax_fused()
        assert fused.has_n_reduction
        assert fused.reduction_ops

    def test_reduction_split_index(self):
        _, fused = softmax_fused()
        # reduce_max is the first post-op, so the whole chain is group 2.
        assert fused.reduction_split_index() == 0

    def test_reduction_split_index_with_eltwise_prefix(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        y = b.relu(y)  # group 1
        m = b.reduce_max(y, axis=-1)  # group 2 starts here
        out = b.sub(y, m)
        b.output(out)
        graph = b.finish()
        fused = FusedMatmul(
            name="f",
            matmul=graph.ops[0],
            post_ops=graph.ops[1:],
            params=MatmulParams(
                m=64, n=64, k=64, mb=16, nb=16, kb=16, bs=2, mpn=2, npn=1
            ),
        )
        assert fused.reduction_split_index() == 1

    def test_split_index_no_reduction(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.relu(b.matmul(x, w))
        b.output(y)
        graph = b.finish()
        fused = FusedMatmul(
            name="f",
            matmul=graph.ops[0],
            post_ops=[graph.ops[1]],
            params=params(),
        )
        assert fused.reduction_split_index() == 1
        assert not fused.has_n_reduction

    def test_interleaved_groups_rejected(self):
        """An eltwise op scheduled after the reduction but independent of
        it violates the contiguous two-group invariant."""
        b = GraphBuilder()
        x = b.input("x", DType.f32, (64, 64))
        w = b.input("w", DType.f32, (64, 64))
        y = b.matmul(x, w)
        m = b.reduce_max(y, axis=-1)
        r = b.relu(y)  # independent of the reduction, but listed after it
        out = b.sub(r, m)
        b.output(out)
        graph = b.finish()
        fused = FusedMatmul(
            name="f",
            matmul=graph.ops[0],
            post_ops=[graph.ops[1], graph.ops[2], graph.ops[3]],
            params=params(),
        )
        with pytest.raises(LoweringError, match="ordered after"):
            fused.reduction_split_index()

    def test_evaluate_reference(self):
        graph, fused = softmax_fused()
        x = np.random.randn(64, 64).astype(np.float32)
        w = np.random.randn(64, 64).astype(np.float32) * 0.1
        result = fused.evaluate_reference(
            {fused.a.id: x, fused.b.id: w}
        )
        logits = x @ w
        expected = np.exp(logits - logits.max(-1, keepdims=True))
        expected /= expected.sum(-1, keepdims=True)
        np.testing.assert_allclose(result, expected, rtol=1e-5, atol=1e-7)

    def test_evaluate_reference_missing_input(self):
        _, fused = softmax_fused()
        with pytest.raises(LoweringError, match="missing input"):
            fused.evaluate_reference({})


class TestFusionPlan:
    def test_partition_by_kind(self):
        graph, fused = softmax_fused()
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        op = b.graph.ops
        relu = b.relu(x)
        b.output(relu)
        sgraph = b.finish()
        plan = FusionPlan(
            items=[fused, StandaloneOp(name="s", op=sgraph.ops[0])]
        )
        assert len(plan.fused_matmuls) == 1
        assert len(plan.standalone_ops) == 1
