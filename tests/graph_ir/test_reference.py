"""Tests for the op-by-op reference evaluator (the project oracle)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import ExecutionError
from repro.graph_ir import GraphBuilder
from repro.graph_ir.reference import evaluate_graph


class TestReferenceEvaluator:
    def test_matmul_relu(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 3))
        w = b.constant("w", np.array([[1, -1], [2, -2], [3, -3]], np.float32))
        y = b.relu(b.matmul(x, w))
        b.output(y)
        graph = b.finish()
        data = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.float32)
        out = evaluate_graph(graph, {"x": data})[y.name]
        np.testing.assert_array_equal(out, [[1, 0], [5, 0]])

    def test_softmax_rows_sum_to_one(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 8))
        y = b.softmax(x)
        b.output(y)
        graph = b.finish()
        out = evaluate_graph(
            graph, {"x": np.random.randn(4, 8).astype(np.float32)}
        )[y.name]
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_gelu_matches_formula(self):
        from scipy.special import erf

        b = GraphBuilder()
        x = b.input("x", DType.f32, (16,))
        y = b.gelu(x)
        b.output(y)
        graph = b.finish()
        data = np.linspace(-3, 3, 16).astype(np.float32)
        out = evaluate_graph(graph, {"x": data})[y.name]
        expected = 0.5 * data * (1 + erf(data / np.sqrt(2)))
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_quantize_dequantize_chain(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8,))
        q = b.quantize(x, scale=0.1, zero_point=3, dtype=DType.u8)
        d = b.dequantize(q, scale=0.1, zero_point=3)
        b.output(d)
        graph = b.finish()
        data = np.array([0, 0.1, 0.2, 0.35, 1, 2, 3, 4], dtype=np.float32)
        out = evaluate_graph(graph, {"x": data})[d.name]
        assert np.all(np.abs(out - data) <= 0.05 + 1e-6)

    def test_int8_matmul_exact(self):
        b = GraphBuilder()
        x = b.input("x", DType.u8, (4, 8))
        w = b.input("w", DType.s8, (8, 4))
        y = b.matmul(x, w)
        b.output(y)
        graph = b.finish()
        a = np.random.randint(0, 255, (4, 8)).astype(np.uint8)
        wt = np.random.randint(-128, 127, (8, 4)).astype(np.int8)
        out = evaluate_graph(graph, {"x": a, "w": wt})[y.name]
        assert out.dtype == np.int32
        np.testing.assert_array_equal(
            out, a.astype(np.int32) @ wt.astype(np.int32)
        )

    def test_missing_input_raises(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        b.output(b.relu(x))
        graph = b.finish()
        with pytest.raises(ExecutionError, match="missing input"):
            evaluate_graph(graph, {})

    def test_wrong_shape_raises(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        b.output(b.relu(x))
        graph = b.finish()
        with pytest.raises(ExecutionError, match="shape"):
            evaluate_graph(graph, {"x": np.zeros((5,), dtype=np.float32)})

    def test_wrong_dtype_raises(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        b.output(b.relu(x))
        graph = b.finish()
        with pytest.raises(ExecutionError, match="dtype"):
            evaluate_graph(graph, {"x": np.zeros(4, dtype=np.int32)})

    def test_layernorm(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4, 16))
        gamma = b.constant("gamma", np.ones(16, dtype=np.float32))
        beta = b.constant("beta", np.zeros(16, dtype=np.float32))
        y = b.layernorm(x, gamma, beta)
        b.output(y)
        graph = b.finish()
        out = evaluate_graph(
            graph, {"x": np.random.randn(4, 16).astype(np.float32)}
        )[y.name]
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_transpose_and_reshape(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 3, 4))
        t = b.transpose(x, (0, 2, 1))
        r = b.reshape(t, (8, 3))
        b.output(r)
        graph = b.finish()
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        out = evaluate_graph(graph, {"x": data})[r.name]
        np.testing.assert_array_equal(out, data.transpose(0, 2, 1).reshape(8, 3))
