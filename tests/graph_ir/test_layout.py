"""Unit and property tests for blocked memory layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.graph_ir.layout import BlockedLayout, blocked_2d, plain


class TestPlain:
    def test_plain_is_identity(self):
        layout = plain(2)
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        np.testing.assert_array_equal(layout.to_physical(x), x)
        assert layout.is_plain
        assert layout.physical_shape((3, 4)) == (3, 4)
        assert layout.tag() == "AB"

    def test_permuted_plain(self):
        layout = BlockedLayout(ndims=2, outer_order=(1, 0))
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        np.testing.assert_array_equal(layout.to_physical(x), x.T)
        assert not layout.is_plain
        assert layout.is_permuted_plain
        assert layout.tag() == "BA"


class TestBlocked2D:
    def test_a_operand_layout(self):
        """A[M,K] -> A'[M/MB, K/KB, MB, KB] as in the paper."""
        layout = blocked_2d(2, 3)
        assert layout.physical_shape((4, 6)) == (2, 2, 2, 3)
        x = np.arange(24, dtype=np.float32).reshape(4, 6)
        physical = layout.to_physical(x)
        # Block (0, 0) holds rows 0-1, cols 0-2.
        np.testing.assert_array_equal(physical[0, 0], x[0:2, 0:3])
        np.testing.assert_array_equal(physical[1, 1], x[2:4, 3:6])

    def test_b_operand_layout_swapped_inner(self):
        """B[K,N] -> B'[K/KB, N/NB, NB, KB]: inner dims swapped."""
        layout = blocked_2d(2, 3, swap_inner=True)
        assert layout.physical_shape((4, 6)) == (2, 2, 3, 2)
        x = np.arange(24, dtype=np.float32).reshape(4, 6)
        physical = layout.to_physical(x)
        np.testing.assert_array_equal(physical[0, 0], x[0:2, 0:3].T)

    def test_padding(self):
        layout = blocked_2d(4, 4)
        assert layout.padded_shape((5, 6)) == (8, 8)
        assert layout.physical_shape((5, 6)) == (2, 2, 4, 4)
        x = np.ones((5, 6), dtype=np.float32)
        physical = layout.to_physical(x)
        assert physical.shape == (2, 2, 4, 4)
        # Padded region is zero.
        assert physical[1, 1, 3, 3] == 0.0
        np.testing.assert_array_equal(layout.from_physical(physical, (5, 6)), x)

    def test_num_elements_counts_padding(self):
        layout = blocked_2d(4, 4)
        assert layout.num_elements((5, 6)) == 64

    def test_requires_two_dims(self):
        with pytest.raises(LayoutError):
            blocked_2d(2, 2, ndims=1)

    def test_batch_dims(self):
        layout = blocked_2d(2, 2, ndims=3)
        assert layout.physical_shape((5, 4, 4)) == (5, 2, 2, 2, 2)


class TestValidation:
    def test_bad_outer_order(self):
        with pytest.raises(LayoutError):
            BlockedLayout(ndims=2, outer_order=(0, 0))

    def test_bad_axis(self):
        with pytest.raises(LayoutError):
            BlockedLayout(ndims=2, inner_blocks=((5, 4),))

    def test_bad_block_size(self):
        with pytest.raises(LayoutError):
            BlockedLayout(ndims=2, inner_blocks=((0, 0),))

    def test_rank_mismatch(self):
        with pytest.raises(LayoutError):
            plain(2).physical_shape((1, 2, 3))

    def test_from_physical_shape_mismatch(self):
        layout = blocked_2d(2, 2)
        with pytest.raises(LayoutError):
            layout.from_physical(np.zeros((3, 3)), (4, 4))


class TestNestedBlocks:
    def test_vnni_style_double_blocking(self):
        """A VNNI-ish layout blocks the K axis twice: ...KB then 4."""
        layout = BlockedLayout(
            ndims=2, inner_blocks=((0, 8), (1, 16), (0, 4))
        )
        # K axis (0) has total block 32.
        assert layout.total_block(0) == 32
        assert layout.physical_shape((64, 32)) == (2, 2, 8, 16, 4)
        x = np.random.rand(64, 32).astype(np.float32)
        physical = layout.to_physical(x)
        np.testing.assert_array_equal(layout.from_physical(physical, x.shape), x)

    def test_tag(self):
        layout = BlockedLayout(ndims=2, inner_blocks=((0, 32), (1, 64)))
        assert layout.tag() == "AB32a64b"


@st.composite
def layout_and_shape(draw):
    ndims = draw(st.integers(min_value=1, max_value=3))
    axes = list(range(ndims))
    order = tuple(draw(st.permutations(axes)))
    n_blocks = draw(st.integers(min_value=0, max_value=2))
    blocks = tuple(
        (
            draw(st.sampled_from(axes)),
            draw(st.sampled_from([2, 3, 4])),
        )
        for _ in range(n_blocks)
    )
    layout = BlockedLayout(ndims=ndims, outer_order=order, inner_blocks=blocks)
    shape = tuple(draw(st.integers(min_value=1, max_value=9)) for _ in axes)
    return layout, shape


class TestRoundtripProperty:
    @settings(max_examples=200, deadline=None)
    @given(layout_and_shape())
    def test_to_physical_roundtrips(self, case):
        """from_physical(to_physical(x)) == x for any layout and shape."""
        layout, shape = case
        x = np.arange(np.prod(shape), dtype=np.float32).reshape(shape)
        physical = layout.to_physical(x)
        assert physical.shape == layout.physical_shape(shape)
        np.testing.assert_array_equal(layout.from_physical(physical, shape), x)

    @settings(max_examples=100, deadline=None)
    @given(layout_and_shape())
    def test_physical_preserves_total_data(self, case):
        """Sum of elements is preserved (padding adds zeros)."""
        layout, shape = case
        x = np.random.rand(*shape).astype(np.float64)
        physical = layout.to_physical(x)
        np.testing.assert_allclose(physical.sum(), x.sum(), rtol=1e-9)
