"""Unit tests for Graph IR construction, validation and queries."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import (
    DataTypeError,
    GraphValidationError,
    ShapeInferenceError,
)
from repro.graph_ir import Graph, GraphBuilder, LogicalTensor, Op, format_graph
from repro.graph_ir.logical_tensor import PropertyKind


def small_mlp():
    b = GraphBuilder("mlp")
    x = b.input("x", DType.f32, (8, 16))
    w = b.constant("w", np.ones((16, 4), dtype=np.float32))
    y = b.matmul(x, w)
    y = b.relu(y)
    b.output(y)
    return b, b.finish()


class TestBuilder:
    def test_build_and_validate(self):
        _, graph = small_mlp()
        assert len(graph.ops) == 2
        assert graph.ops[0].kind == "matmul"
        assert graph.outputs[0].shape == (8, 4)

    def test_matmul_shape_inference(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (2, 3, 4))
        w = b.input("w", DType.f32, (4, 5))
        y = b.matmul(x, w)
        assert y.shape == (2, 3, 5)
        assert y.dtype == DType.f32

    def test_matmul_transpose_b(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8, 16))
        w = b.input("w", DType.f32, (4, 16))
        y = b.matmul(x, w, transpose_b=True)
        assert y.shape == (8, 4)

    def test_matmul_contraction_mismatch(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8, 16))
        w = b.input("w", DType.f32, (17, 4))
        with pytest.raises(ShapeInferenceError):
            b.matmul(x, w)

    def test_int8_matmul_outputs_s32(self):
        b = GraphBuilder()
        x = b.input("x", DType.u8, (8, 16))
        w = b.input("w", DType.s8, (16, 4))
        y = b.matmul(x, w)
        assert y.dtype == DType.s32

    def test_mixed_int_float_matmul_rejected(self):
        b = GraphBuilder()
        x = b.input("x", DType.u8, (8, 16))
        w = b.input("w", DType.f32, (16, 4))
        with pytest.raises(DataTypeError):
            b.matmul(x, w)

    def test_binary_broadcast(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8, 16))
        bias = b.input("bias", DType.f32, (16,))
        y = b.add(x, bias)
        assert y.shape == (8, 16)

    def test_binary_dtype_mismatch(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (4,))
        y = b.input("y", DType.s32, (4,))
        with pytest.raises(DataTypeError):
            b.add(x, y)

    def test_reduce_keepdims(self):
        b = GraphBuilder()
        x = b.input("x", DType.f32, (8, 16))
        s = b.reduce_sum(x, axis=-1)
        assert s.shape == (8, 1)
        s2 = b.reduce_sum(x, axis=-1, keepdims=False)
        assert s2.shape == (8,)

    def test_constant_binding_shape_checked(self):
        b = GraphBuilder()
        with pytest.raises(GraphValidationError):
            tensor = LogicalTensor(dtype=DType.f32, shape=(2, 2), name="c")
            b.graph.add_constant(tensor, np.zeros((3, 3), dtype=np.float32))


class TestGraphQueries:
    def test_producer_consumer(self):
        _, graph = small_mlp()
        matmul, relu = graph.ops
        mm_out = matmul.outputs[0]
        assert graph.producer(mm_out) is matmul
        assert graph.consumers(mm_out) == [relu]
        assert graph.producer(graph.inputs[0]) is None

    def test_topological_order(self):
        _, graph = small_mlp()
        order = graph.topological_order()
        assert [op.kind for op in order] == ["matmul", "relu"]

    def test_replace_uses(self):
        b, graph = small_mlp()
        matmul, relu = graph.ops
        replacement = LogicalTensor(dtype=DType.f32, shape=(8, 4), name="r")
        graph.replace_uses(matmul.outputs[0], replacement)
        assert relu.inputs[0] is replacement

    def test_all_tensors(self):
        _, graph = small_mlp()
        names = {t.name for t in graph.all_tensors()}
        assert "x" in names and "w" in names


class TestValidation:
    def test_cycle_detected(self):
        graph = Graph("cyclic")
        t1 = LogicalTensor(dtype=DType.f32, shape=(4,), name="t1")
        t2 = LogicalTensor(dtype=DType.f32, shape=(4,), name="t2")
        graph.add_op(Op(kind="relu", inputs=[t2], outputs=[t1]))
        graph.add_op(Op(kind="relu", inputs=[t1], outputs=[t2]))
        with pytest.raises(GraphValidationError, match="cycle"):
            graph.topological_order()

    def test_dangling_tensor_detected(self):
        graph = Graph("dangling")
        ghost = LogicalTensor(dtype=DType.f32, shape=(4,), name="ghost")
        out = LogicalTensor(dtype=DType.f32, shape=(4,), name="out")
        graph.add_op(Op(kind="relu", inputs=[ghost], outputs=[out]))
        with pytest.raises(GraphValidationError, match="dangling"):
            graph.validate()

    def test_double_producer_detected(self):
        graph = Graph("dup")
        x = LogicalTensor(dtype=DType.f32, shape=(4,), name="x")
        out = LogicalTensor(dtype=DType.f32, shape=(4,), name="out")
        graph.add_input(x)
        graph.add_op(Op(kind="relu", inputs=[x], outputs=[out]))
        graph.add_op(Op(kind="neg", inputs=[x], outputs=[out]))
        with pytest.raises(GraphValidationError, match="produced by both"):
            graph.validate()

    def test_arity_checked(self):
        graph = Graph("arity")
        x = LogicalTensor(dtype=DType.f32, shape=(4,), name="x")
        out = LogicalTensor(dtype=DType.f32, shape=(4,), name="out")
        graph.add_input(x)
        graph.add_op(Op(kind="add", inputs=[x], outputs=[out]))
        with pytest.raises(GraphValidationError, match="inputs"):
            graph.validate()

    def test_unproduced_output_detected(self):
        graph = Graph("noout")
        ghost = LogicalTensor(dtype=DType.f32, shape=(4,), name="ghost")
        graph.mark_output(ghost)
        with pytest.raises(GraphValidationError, match="produced by no op"):
            graph.validate()

    def test_infer_shapes_detects_drift(self):
        _, graph = small_mlp()
        graph.ops[1].outputs[0].shape = (8, 5)  # corrupt
        with pytest.raises(GraphValidationError):
            graph.infer_shapes()

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(ShapeInferenceError):
            LogicalTensor(dtype=DType.f32, shape=(0, 4))


class TestPrinter:
    def test_format_contains_ops(self):
        _, graph = small_mlp()
        text = format_graph(graph)
        assert "matmul" in text
        assert "relu" in text
        assert "!w" in text  # constant marker

    def test_constant_property(self):
        _, graph = small_mlp()
        w = next(t for t in graph.inputs if t.name == "w")
        assert w.prop is PropertyKind.CONSTANT
        assert w.is_constant
