"""Tests for standalone-op lowering (lower_fusible)."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.errors import LoweringError
from repro.graph_ir import GraphBuilder, blocked_2d
from repro.graph_ir.layout import BlockedLayout
from repro.graph_ir.logical_tensor import LogicalTensor
from repro.graph_ir.op import Op
from repro.lowering.lower_fusible import lower_standalone_op, _blocked_spec
from repro.runtime import Interpreter
from repro.tensor_ir import TirModule


def run_op(op, buffers):
    func = lower_standalone_op(op, "f")
    module = TirModule(entry="f")
    module.add(func)
    interp = Interpreter(module)
    call = {}
    for tensor, param in zip(
        list(op.inputs) + list(op.outputs), func.params
    ):
        call.setdefault(param.name, buffers[tensor.id])
    interp.run(call)
    return interp


def make_op(kind, inputs, attrs=None):
    b = GraphBuilder()
    tensors = []
    for i, (dtype, shape) in enumerate(inputs):
        tensors.append(b.input(f"in{i}", dtype, shape))
    out = b.op(kind, tensors, attrs or {})
    b.output(out)
    graph = b.finish()
    return graph.ops[0], tensors, out


class TestElementwise:
    def test_relu(self):
        op, (x,), out = make_op("relu", [(DType.f32, (8, 8))])
        X = np.random.randn(8, 8).astype(np.float32)
        Y = np.zeros((8, 8), np.float32)
        run_op(op, {x.id: X, out.id: Y})
        np.testing.assert_array_equal(Y, np.maximum(X, 0))

    def test_binary_broadcast(self):
        op, (x, y), out = make_op(
            "add", [(DType.f32, (4, 8)), (DType.f32, (8,))]
        )
        X = np.random.randn(4, 8).astype(np.float32)
        B = np.random.randn(8).astype(np.float32)
        Y = np.zeros((4, 8), np.float32)
        run_op(op, {x.id: X, y.id: B, out.id: Y})
        np.testing.assert_allclose(Y, X + B, rtol=1e-6)

    def test_reduce(self):
        op, (x,), out = make_op(
            "reduce_sum", [(DType.f32, (4, 8))], {"axis": -1, "keepdims": True}
        )
        X = np.random.randn(4, 8).astype(np.float32)
        Y = np.zeros((4, 1), np.float32)
        run_op(op, {x.id: X, out.id: Y})
        np.testing.assert_allclose(Y, X.sum(-1, keepdims=True), rtol=1e-6)

    def test_transpose(self):
        op, (x,), out = make_op(
            "transpose", [(DType.f32, (4, 8))], {"perm": (1, 0)}
        )
        X = np.random.randn(4, 8).astype(np.float32)
        Y = np.zeros((8, 4), np.float32)
        run_op(op, {x.id: X, out.id: Y})
        np.testing.assert_array_equal(Y, X.T)

    def test_softmax_complex_op(self):
        op, (x,), out = make_op("softmax", [(DType.f32, (4, 8))])
        X = np.random.randn(4, 8).astype(np.float32)
        Y = np.zeros((4, 8), np.float32)
        run_op(op, {x.id: X, out.id: Y})
        np.testing.assert_allclose(Y.sum(-1), np.ones(4), rtol=1e-5)

    def test_blocked_input_rejected(self):
        op, (x,), out = make_op("relu", [(DType.f32, (8, 8))])
        x.layout = blocked_2d(4, 4)
        with pytest.raises(LoweringError, match="plain layouts"):
            lower_standalone_op(op, "f")


class TestReorder:
    def _reorder_op(self, src_shape, src_layout, dst_layout, pad_to=None):
        src = LogicalTensor(
            dtype=DType.f32, shape=src_shape, layout=src_layout, name="src"
        )
        dst = LogicalTensor(
            dtype=DType.f32,
            shape=pad_to or src_shape,
            layout=dst_layout,
            name="dst",
        )
        attrs = {"layout": dst_layout}
        if pad_to:
            attrs["pad_to"] = pad_to
        return Op(kind="reorder", inputs=[src], outputs=[dst], attrs=attrs)

    def test_plain_to_blocked(self):
        op = self._reorder_op((8, 8), None, blocked_2d(4, 4))
        src, dst = op.inputs[0], op.outputs[0]
        X = np.random.randn(8, 8).astype(np.float32)
        Y = np.zeros((2, 2, 4, 4), np.float32)
        run_op(op, {src.id: X, dst.id: Y})
        np.testing.assert_array_equal(Y, blocked_2d(4, 4).to_physical(X))

    def test_blocked_to_plain(self):
        op = self._reorder_op((8, 8), blocked_2d(4, 4), None)
        src, dst = op.inputs[0], op.outputs[0]
        X = np.random.randn(8, 8).astype(np.float32)
        Y = np.zeros((8, 8), np.float32)
        run_op(
            op, {src.id: blocked_2d(4, 4).to_physical(X), dst.id: Y}
        )
        np.testing.assert_array_equal(Y, X)

    def test_weight_layout_with_padding(self):
        """The init-graph weight reorder: plain [k, n] -> padded blocked."""
        from repro.graph_ir.passes.layout_propagation import (
            weight_blocked_layout,
        )

        layout = weight_blocked_layout(4, 4, transposed=False)
        op = self._reorder_op((6, 6), None, layout, pad_to=(8, 8))
        src, dst = op.inputs[0], op.outputs[0]
        X = np.random.randn(6, 6).astype(np.float32)
        Y = np.zeros(layout.physical_shape((8, 8)), np.float32)
        run_op(op, {src.id: X, dst.id: Y})
        # Block (0, 0) holds X[0:4, 0:4] transposed-inner ([NB, KB]).
        np.testing.assert_array_equal(Y[0, 0], X[0:4, 0:4].T)
        # Padding region is zero.
        assert Y[1, 1, 3, 3] == 0.0

    def test_transposed_weight_layout(self):
        """transpose_b weights: logical [n, k] -> physical [K/KB, N/NB, NB, KB]."""
        from repro.graph_ir.passes.layout_propagation import (
            weight_blocked_layout,
        )

        layout = weight_blocked_layout(4, 4, transposed=True)
        op = self._reorder_op((8, 8), None, layout)
        src, dst = op.inputs[0], op.outputs[0]
        W = np.random.randn(8, 8).astype(np.float32)  # [n, k]
        Y = np.zeros(layout.physical_shape((8, 8)), np.float32)
        run_op(op, {src.id: W, dst.id: Y})
        # Block (kb_i=0, nb_i=0) should be W[0:4, 0:4] as [NB, KB]:
        # element [n, k] of the block = W[n, k].
        np.testing.assert_array_equal(Y[0, 0], W[0:4, 0:4])

    def test_batched_reorder(self):
        layout = BlockedLayout(
            ndims=3, inner_blocks=((1, 4), (2, 4))
        )
        op = self._reorder_op((3, 8, 8), None, layout)
        src, dst = op.inputs[0], op.outputs[0]
        X = np.random.randn(3, 8, 8).astype(np.float32)
        Y = np.zeros(layout.physical_shape((3, 8, 8)), np.float32)
        run_op(op, {src.id: X, dst.id: Y})
        np.testing.assert_array_equal(Y, layout.to_physical(X))

    def test_blocked_to_blocked(self):
        src_layout = blocked_2d(4, 4)
        dst_layout = blocked_2d(2, 2)
        op = self._reorder_op((8, 8), src_layout, dst_layout)
        src, dst = op.inputs[0], op.outputs[0]
        X = np.random.randn(8, 8).astype(np.float32)
        Y = np.zeros(dst_layout.physical_shape((8, 8)), np.float32)
        run_op(op, {src.id: src_layout.to_physical(X), dst.id: Y})
        np.testing.assert_array_equal(Y, dst_layout.to_physical(X))


class TestBlockedSpec:
    def test_a_layout(self):
        spec = _blocked_spec(blocked_2d(16, 32), (64, 64))
        assert spec == {
            "block_sizes": (16, 32),
            "swap_inner": False,
            "transpose_src": False,
        }

    def test_b_layout(self):
        layout = BlockedLayout(
            ndims=2, inner_blocks=((1, 32), (0, 16))
        )
        spec = _blocked_spec(layout, (64, 64))
        assert spec["swap_inner"] is True
        assert spec["block_sizes"] == (16, 32)

    def test_unsupported_layout(self):
        layout = BlockedLayout(ndims=2, inner_blocks=((0, 4),))
        with pytest.raises(LoweringError):
            _blocked_spec(layout, (8, 8))
