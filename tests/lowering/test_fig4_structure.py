"""Structural checks of the generated Tensor IR (paper Figures 4 and 6).

Compiles matmul + post-ops and inspects the generated function: the loop
nest shape, the brgemm slice shapes, anchor placement of the fused
post-ops and the effect of the tensor-size optimization on the full-size
temporaries the lowering introduces.
"""

import numpy as np
import pytest

from repro import CompilerOptions, DType, GraphBuilder, compile_graph
from repro.tensor_ir import format_function
from repro.tensor_ir.stmt import Alloc, BrgemmCall, Compute, For, Pack
from repro.tensor_ir.visitor import walk


def compile_matmul_relu(m=64, k=64, n=64, options=None):
    b = GraphBuilder("f")
    x = b.input("x", DType.f32, (m, k))
    w = b.constant("w", dtype=DType.f32, shape=(k, n))
    b.output(b.relu(b.matmul(x, w)))
    return compile_graph(b.finish(), options=options)


def fused_function(partition):
    module = partition.lowered.module
    for name, func in module.functions.items():
        if name != "main" and "fused" in name or "merged" in name:
            return func
    raise AssertionError("no fused function found")


class TestLoopNestStructure:
    def test_parallel_loops_then_serial(self):
        """Figure 2's shape: parallel mpi/npi wrap serial msi/ksi/nsi."""
        func = fused_function(compile_matmul_relu())
        fors = [s for s in walk(func.body) if isinstance(s, For)]
        names = [f.var for f in fors]
        assert any(v.startswith("mpi") for v in names)
        assert any(v.startswith("npi") for v in names)
        assert any(v.startswith("msi") for v in names)
        assert any(v.startswith("ksi") for v in names)
        assert any(v.startswith("nsi") for v in names)
        parallel = {f.var for f in fors if f.parallel}
        serial = {f.var for f in fors if not f.parallel}
        assert any(v.startswith("mpi") for v in parallel)
        assert any(v.startswith("npi") for v in parallel)
        assert any(v.startswith("msi") for v in serial)

    def test_brgemm_slice_shapes(self):
        """The microkernel consumes [1, BS, MB, KB] x [BS, 1, NB, KB]."""
        partition = compile_matmul_relu()
        func = fused_function(partition)
        params = func.attrs.get("params") or list(
            func.attrs.get("merge_members", [{}])
        )[0].get("params")
        calls = [s for s in walk(func.body) if isinstance(s, BrgemmCall)]
        assert calls, "no brgemm call generated"
        for call in calls:
            assert call.batch == params.bs
            assert call.a.sizes[-2:] == (params.mb, params.kb)
            assert call.b.sizes[-2:] == (params.nb, params.kb)
            assert call.c.sizes[-2:] == (params.mb, params.nb)

    def test_post_op_after_k_loop(self):
        """Post-ops run only after the ksi reduction completes (the paper:
        'post-op fusion must be done after k-dimension reduction')."""
        func = fused_function(compile_matmul_relu())

        def k_loop_contains_compute(stmt):
            inside = False
            for node in walk(stmt):
                if isinstance(node, For) and node.var.startswith("ksi"):
                    for inner in walk(node.body):
                        if isinstance(inner, Compute) and inner.op == "relu":
                            return True
            return False

        assert not k_loop_contains_compute(func.body)
        assert any(
            isinstance(s, Compute) and s.op == "relu"
            for s in walk(func.body)
        )


class TestTensorSizeOptimization:
    def test_slice_packed_a_is_shrunk(self):
        """Figure 6's A' reduces to one [1, BS, MB, KB] slab."""
        partition = compile_matmul_relu(m=64, k=128, n=64)
        func = fused_function(partition)
        a_allocs = [
            s
            for s in walk(func.body)
            if isinstance(s, Alloc) and s.tensor.startswith("A_blk")
        ]
        if not a_allocs:
            pytest.skip("A operand consumed blocked; no packing temp")
        params = func.attrs.get("params") or list(
            func.attrs["merge_members"]
        )[0]["params"]
        alloc = a_allocs[0]
        assert alloc.shape[0] == 1, f"A' not shrunk: {alloc.shape}"
        assert alloc.shape[1] == params.bs

    def test_post_op_temp_is_shrunk_to_block(self):
        """C''-style post-op temporaries shrink to one block."""
        b = GraphBuilder("f")
        x = b.input("x", DType.f32, (64, 64))
        w = b.constant("w", dtype=DType.f32, shape=(64, 64))
        bias = b.constant("bias", dtype=DType.f32, shape=(64,))
        y = b.matmul(x, w)
        y = b.add(y, bias)
        b.output(b.relu(y))
        partition = compile_graph(b.finish())
        func = fused_function(partition)
        pv_allocs = [
            s
            for s in walk(func.body)
            if isinstance(s, Alloc) and s.tensor.startswith("pv_")
        ]
        assert pv_allocs
        for alloc in pv_allocs:
            # Shrunk from [M/MB, N/NB, MB, NB] to [1, 1, MB, NB].
            assert alloc.shape[0] == 1 and alloc.shape[1] == 1, alloc.shape

    def test_without_shrink_temps_are_full_size(self):
        partition = compile_matmul_relu(
            m=64,
            k=128,
            n=64,
            options=CompilerOptions(enable_tensor_shrink=False),
        )
        func = fused_function(partition)
        a_allocs = [
            s
            for s in walk(func.body)
            if isinstance(s, Alloc) and s.tensor.startswith("A_blk")
        ]
        if not a_allocs:
            pytest.skip("A operand consumed blocked; no packing temp")
        assert a_allocs[0].shape[0] > 1  # still [M/MB, K/KB, MB, KB]


class TestAnchorPlacement:
    def test_pack_slice_sits_in_k_loop(self):
        """Pre-op anchor #4: the fused A reorder lives in the ksi loop."""
        partition = compile_matmul_relu(m=64, k=128, n=64)
        func = fused_function(partition)
        found = False
        for node in walk(func.body):
            if isinstance(node, For) and node.var.startswith("ksi"):
                for inner in walk(node.body):
                    if isinstance(inner, Pack):
                        found = True
        anchors = func.attrs.get("anchors") or list(
            func.attrs.get("merge_members", [{}])
        )[0].get("anchors", {})
        if anchors.get("pre_a") and "4" in anchors["pre_a"].value:
            assert found, "anchor-4 pack not inside the ksi loop"

    def test_printer_shows_fig6_shape(self):
        func = fused_function(compile_matmul_relu())
        text = format_function(func)
        assert "batch_reduce_gemm" in text
        assert "parallel loop" in text
        assert "relu(" in text
