"""The specializing executor: differential equivalence and satellites.

The compiled executor is only allowed to exist because it is bit-identical
to the interpreter.  The differential matrix here (MLP/MHA x f32/int8 x
1/4 threads) is the contract; the rest covers the specialization pass's
unit behavior and the interpreter satellites (persistent pool, Free
clearing thread-local status, lock-free serial stats).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import CompilerOptions, DType, compile_graph
from repro.errors import ExecutionError
from repro.runtime import CompiledExecutor, ExecutionStats, Interpreter
from repro.runtime.executor import compile_scalar, expr_source
from repro.runtime.interpreter import _NullLock
from repro.tensor_ir import SliceRef, TirBuilder, TirModule
from repro.tensor_ir.expr import Binary, BinaryOp, Const, Var
from repro.tensor_ir.stmt import Alloc, full_slice
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)

WORKLOADS = {
    "MLP_1": (lambda dtype: build_mlp_graph("MLP_1", 16, dtype),
              lambda dtype: make_mlp_inputs("MLP_1", 16, dtype)),
    "MHA_1": (lambda dtype: build_mha_graph("MHA_1", 2, dtype),
              lambda dtype: make_mha_inputs("MHA_1", 2, dtype)),
}


def run_backend(workload, dtype, backend, num_threads):
    build, feed = WORKLOADS[workload]
    partition = compile_graph(
        build(dtype),
        options=CompilerOptions(executor=backend),
        num_threads=num_threads,
    )
    outputs, stats = partition.execute_with_stats(dict(feed(dtype)))
    partition.close()
    # Tensor names differ between independently built graphs (global id
    # counter), so equivalence is positional.
    return list(outputs.values()), stats


class TestDifferential:
    """Interpreter and compiled executor must be indistinguishable."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("dtype", [DType.f32, DType.s8],
                             ids=["f32", "int8"])
    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_outputs_bit_identical_and_stats_match(
        self, workload, dtype, num_threads
    ):
        ref_out, ref_stats = run_backend(
            workload, dtype, "interpret", num_threads
        )
        got_out, got_stats = run_backend(
            workload, dtype, "compiled", num_threads
        )
        assert len(ref_out) == len(got_out)
        for ref, got in zip(ref_out, got_out):
            np.testing.assert_array_equal(ref, got)
        ref_dict, got_dict = ref_stats.to_dict(), got_stats.to_dict()
        if num_threads == 1:
            assert ref_dict == got_dict
        else:
            # peak_temp_bytes depends on thread interleaving in both
            # backends; every deterministic counter must still agree.
            for key in ref_dict:
                if key != "peak_temp_bytes":
                    assert ref_dict[key] == got_dict[key], key
            assert got_dict["peak_temp_bytes"] > 0

    def test_threaded_equals_serial_compiled(self):
        serial, _ = run_backend("MLP_1", DType.f32, "compiled", 1)
        threaded, _ = run_backend("MLP_1", DType.f32, "compiled", 4)
        for ref, got in zip(serial, threaded):
            np.testing.assert_array_equal(ref, got)

    def test_repeated_calls_reuse_state_correctly(self):
        build, feed = WORKLOADS["MLP_1"]
        partition = compile_graph(build(DType.f32))
        first = partition.execute(dict(feed(DType.f32)))
        second = partition.execute(dict(feed(DType.f32)))
        # Pooled temporaries and the pooled arena must be re-zeroed: any
        # stale state from call one would perturb call two.
        for ref, got in zip(first.values(), second.values()):
            np.testing.assert_array_equal(ref, got)


class TestBackendSelection:
    def test_default_is_compiled(self):
        partition = compile_graph(build_mlp_graph("MLP_1", 16, DType.f32))
        assert partition.executor == "compiled"
        assert CompilerOptions().executor == "compiled"

    def test_interpret_selectable_via_options(self):
        partition = compile_graph(
            build_mlp_graph("MLP_1", 16, DType.f32),
            options=CompilerOptions(executor="interpret"),
        )
        assert partition.executor == "interpret"

    def test_invalid_backend_rejected_at_compile(self):
        with pytest.raises(ValueError, match="executor"):
            compile_graph(
                build_mlp_graph("MLP_1", 16, DType.f32),
                options=CompilerOptions(executor="jit"),
            )

    def test_invalid_backend_rejected_by_partition(self):
        partition = compile_graph(build_mlp_graph("MLP_1", 16, DType.f32))
        from repro.runtime import CompiledPartition

        with pytest.raises(ValueError, match="jit"):
            CompiledPartition(partition.lowered, executor="jit")

    def test_executor_choice_enters_cache_signature(self):
        from repro.microkernel.machine import XEON_8358
        from repro.service import graph_signature

        sig_compiled = graph_signature(
            build_mlp_graph("MLP_1", 16, DType.f32),
            XEON_8358,
            CompilerOptions(),
        )
        sig_interp = graph_signature(
            build_mlp_graph("MLP_1", 16, DType.f32),
            XEON_8358,
            CompilerOptions(executor="interpret"),
        )
        assert sig_compiled != sig_interp

    def test_session_executor_override(self):
        from repro.service import InferenceSession

        feed = make_mlp_inputs("MLP_1", 16, DType.f32)
        sessions = []
        for backend in ("interpret", "compiled"):
            session = InferenceSession.for_workload(
                "MLP_1", executor=backend
            )
            weights = {
                name: feed[name] for name in session.weight_names
            }
            session = InferenceSession.for_workload(
                "MLP_1",
                weights=weights,
                executor=backend,
            )
            inputs = {name: feed[name] for name in session.input_names}
            sessions.append(list(session.run(inputs).values()))
        for ref, got in zip(*sessions):
            np.testing.assert_array_equal(ref, got)


class TestPartitionPool:
    def test_pool_persists_across_calls_and_tracks_num_threads(self):
        feed = make_mlp_inputs("MLP_1", 16, DType.f32)
        partition = compile_graph(
            build_mlp_graph("MLP_1", 16, DType.f32), num_threads=2
        )
        partition.execute(dict(feed))
        pool = partition._pool
        assert pool is not None
        partition.execute(dict(feed))
        assert partition._pool is pool  # no per-call churn
        partition.num_threads = 3
        partition.execute(dict(feed))
        assert partition._pool is not pool
        assert partition._pool_size == 3
        partition.close()
        assert partition._pool is None

    def test_single_threaded_partition_never_builds_a_pool(self):
        feed = make_mlp_inputs("MLP_1", 16, DType.f32)
        partition = compile_graph(build_mlp_graph("MLP_1", 16, DType.f32))
        partition.execute(dict(feed))
        assert partition._pool is None


def _parallel_module():
    b = TirBuilder("f")
    b.param("x", DType.f32, (4, 8))
    with b.parallel_for("i", 4) as i:
        b.fill(SliceRef("x", (i, 0), (1, 8)), 2.0)
    with b.parallel_for("j", 4) as j:
        b.fill(SliceRef("x", (j, 0), (1, 8)), 3.0)
    module = TirModule(entry="f")
    module.add(b.finish())
    return module


class TestInterpreterSatellites:
    def test_parallel_loops_share_one_pool_for_interpreter_lifetime(self):
        module = _parallel_module()
        interp = Interpreter(module, num_threads=2)
        x = np.zeros((4, 8), dtype=np.float32)
        interp.run({"x": x})
        pool = interp._own_pool
        assert pool is not None  # created once, on the first loop
        interp.run({"x": x})
        assert interp._own_pool is pool
        assert np.all(x == 3.0)
        interp.close()
        assert interp._own_pool is None

    def test_injected_pool_is_used_and_not_owned(self):
        module = _parallel_module()
        with ThreadPoolExecutor(max_workers=2) as pool:
            interp = Interpreter(module, num_threads=2, pool=pool)
            x = np.zeros((4, 8), dtype=np.float32)
            interp.run({"x": x})
            assert interp._own_pool is None
            assert np.all(x == 3.0)

    def test_serial_interpreter_skips_the_stats_lock(self):
        module = _parallel_module()
        assert isinstance(Interpreter(module)._stats_lock, _NullLock)
        threaded = Interpreter(module, num_threads=2)
        assert not isinstance(threaded._stats_lock, _NullLock)
        assert isinstance(threaded._stats_lock, type(threading.Lock()))

    def test_free_clears_thread_local_status(self):
        # A name freed and re-allocated as a plain buffer must not be
        # forked (zeroed) per parallel iteration like the dead
        # thread-local buffer it replaced.
        b = TirBuilder("f")
        b.param("out", DType.f32, (4, 4))
        b.alloc("scratch", DType.f32, (4,), thread_local=True)
        b.free("scratch")
        b.emit(
            Alloc(tensor="scratch", dtype=DType.f32, shape=(4,))
        )
        b.fill(full_slice("scratch", (4,)), 3.0)
        with b.parallel_for("i", 4) as i:
            b.copy(
                SliceRef("out", (i, 0), (1, 4)),
                full_slice("scratch", (4,)),
            )
        b.free("scratch")
        module = TirModule(entry="f")
        module.add(b.finish())
        out = np.zeros((4, 4), dtype=np.float32)
        Interpreter(module, num_threads=2).run({"out": out})
        assert np.all(out == 3.0)  # stale thread-local status would give 0

    def test_stats_merge(self):
        parent = ExecutionStats(brgemm_calls=1, parallel_loops=1)
        parent.note_alloc(100)
        child = ExecutionStats(brgemm_calls=2, compute_stmts=3)
        child.note_alloc(50)
        child.note_free(50)
        parent.merge(child)
        assert parent.brgemm_calls == 3
        assert parent.compute_stmts == 3
        assert parent.parallel_loops == 1
        # Child peak stacks on the parent's live bytes at the fork.
        assert parent.peak_temp_bytes == 150


class TestSpecialization:
    """Unit behavior of the build-time specialization pass."""

    def test_scalar_expressions_fold_or_compile(self):
        const, fn = compile_scalar(
            Binary(BinaryOp.MUL, Const(3), Const(4))
        )
        assert const == 12 and fn is None
        expr = Binary(
            BinaryOp.ADD,
            Binary(BinaryOp.MUL, Var("i"), Const(16)),
            Var("j"),
        )
        const, fn = compile_scalar(expr)
        assert const is None
        assert fn({"i": 2, "j": 5}) == 37
        assert "s['i']" in expr_source(expr)

    def test_constant_slices_and_bounds_precomputed(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4, 8))
        with b.for_("i", 4) as i:
            b.fill(SliceRef("x", (i, 0), (1, 8)), 1.0)
        module = TirModule(entry="f")
        module.add(b.finish())
        x = np.zeros((4, 8), dtype=np.float32)
        CompiledExecutor(module).run({"x": x})
        assert np.all(x == 1.0)

    def test_dynamic_bounds_error_matches_interpreter(self):
        def build():
            b = TirBuilder("f")
            b.param("x", DType.f32, (6,))
            with b.for_("i", 4) as i:
                b.fill(SliceRef("x", (i * 2,), (2,)), 1.0)
            module = TirModule(entry="f")
            module.add(b.finish())
            return module

        x = np.zeros(6, dtype=np.float32)
        with pytest.raises(ExecutionError) as interp_err:
            Interpreter(build()).run({"x": x})
        with pytest.raises(ExecutionError) as exec_err:
            CompiledExecutor(build()).run({"x": x})
        assert str(interp_err.value) == str(exec_err.value)
        assert "out of bounds" in str(exec_err.value)

    def test_static_out_of_bounds_raises_at_run_not_build(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.fill(SliceRef("x", (2,), (4,)), 1.0)  # [2, 6) over a (4,) buf
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CompiledExecutor(module)  # build must not raise
        with pytest.raises(ExecutionError, match="out of bounds"):
            executor.run({"x": np.zeros(4, dtype=np.float32)})

    def test_entry_validation_matches_interpreter(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.fill(full_slice("x", (4,)), 1.0)
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CompiledExecutor(module)
        with pytest.raises(ExecutionError, match="missing buffer 'x'"):
            executor.run({})
        with pytest.raises(ExecutionError, match="has shape"):
            executor.run({"x": np.zeros((5,), dtype=np.float32)})

    def test_pooled_temporaries_are_rezeroed(self):
        # out += tmp with tmp never written: must read zeros on every
        # call, including ones served from the buffer free-list.
        b = TirBuilder("f")
        b.param("out", DType.f32, (4,))
        tmp = b.alloc("tmp", DType.f32, (4,))
        b.compute(
            "add",
            full_slice("out", (4,)),
            [full_slice("out", (4,)), full_slice(tmp, (4,))],
        )
        b.fill(full_slice(tmp, (4,)), 9.0)  # poison before the free
        b.free(tmp)
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CompiledExecutor(module)
        for _ in range(3):
            out = np.ones(4, dtype=np.float32)
            executor.run({"out": out})
            np.testing.assert_array_equal(out, np.ones(4))

    def test_stats_match_interpreter_exactly(self):
        module = _parallel_module()
        x = np.zeros((4, 8), dtype=np.float32)
        interp = Interpreter(module)
        interp.run({"x": x})
        stats = CompiledExecutor(module).run(
            {"x": np.zeros((4, 8), dtype=np.float32)}
        )
        assert stats.to_dict() == interp.stats.to_dict()
