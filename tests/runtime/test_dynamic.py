"""Shape-polymorphic partitions: the dynamic-batch differential matrix.

One symbolic-batch compile must be indistinguishable — bit for bit —
from the static-bucket serving path it replaces: pad the batch up to the
compile hint, run the hint-sized static partition, crop the rows back.
The matrix here (MLP/MHA x f32/int8 x 1/4 threads x batch sweep) pins
that contract across all three executors.

The ``Dynamicity`` taxonomy is ported from IREE's e2e matmul test
generator (DYNAMIC / STATIC / MIXED tensor types); in this IR the
shape-polymorphic contract is exactly MIXED — one symbolic leading dim,
every inner dim static — so the classifier doubles as a guard that the
builders never widen the contract by accident.
"""

import enum

import numpy as np
import pytest

from repro import CompilerOptions, DType, compile_graph
from repro.graph_ir.symbolic import SymDim, canonical_dim, dyn, is_symbolic
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)


@enum.unique
class Dynamicity(enum.Enum):
    """How a graph's tensor shapes mix symbolic and fixed dims."""

    DYNAMIC = "dynamic"  # every dim symbolic; out of this IR's scope
    STATIC = "static"  # fixed values everywhere
    MIXED = "mixed"  # symbolic batch dim, static inner dims


def dynamicity_of(graph) -> Dynamicity:
    """Classify a graph by the dims of its inputs and outputs."""
    dims = [
        dim
        for tensor in list(graph.inputs) + list(graph.outputs)
        for dim in tensor.shape
    ]
    symbolic = sum(1 for dim in dims if is_symbolic(dim))
    if symbolic == 0:
        return Dynamicity.STATIC
    if symbolic == len(dims):
        return Dynamicity.DYNAMIC
    return Dynamicity.MIXED


#: hint = the static bucket the symbolic compile is planned against;
#: the batch sweep crosses 1, a prime, the hint itself, and (for MLP)
#: non-divisors of the microkernel tile.  MHA stays small: its probe
#: cost scales with seq_len^2 and the suite shares a single core.
CASES = {
    "MLP_1": dict(
        build=build_mlp_graph,
        inputs=make_mlp_inputs,
        hint=32,
        batches=(1, 3, 8, 17, 32),
    ),
    "MHA_1": dict(
        build=build_mha_graph,
        inputs=make_mha_inputs,
        hint=4,
        batches=(1, 3, 4),
    ),
}

EXECUTORS = ("interpret", "compiled", "codegen")


def pad_to_hint(fresh, base, batch, hint):
    """Split fresh inputs into (dynamic feed, padded static-hint feed).

    Weights come from ``base`` (drawn once at the hint) so both programs
    see identical constants; every per-batch array — leading dim equal
    to ``batch`` — is zero-padded up to the hint for the static feed.
    """
    dyn_feed, static_feed = {}, {}
    for name, array in base.items():
        if array.shape[0] == hint and fresh[name].shape[0] == batch:
            exact = fresh[name]
            padded = np.zeros((hint,) + exact.shape[1:], dtype=exact.dtype)
            padded[:batch] = exact
            dyn_feed[name], static_feed[name] = exact, padded
        else:
            dyn_feed[name] = static_feed[name] = array
    return dyn_feed, static_feed


class TestDynamicityTaxonomy:
    def test_static_builder_is_static(self):
        graph = build_mlp_graph("MLP_1", 8)
        assert dynamicity_of(graph) is Dynamicity.STATIC

    @pytest.mark.parametrize("workload", sorted(CASES))
    def test_symbolic_builders_are_mixed_never_dynamic(self, workload):
        cfg = CASES[workload]
        graph = cfg["build"](workload, dyn("B", cfg["hint"]))
        # The IR contract: ONE symbolic leading dim, static inner dims.
        assert dynamicity_of(graph) is Dynamicity.MIXED
        for tensor in list(graph.inputs) + list(graph.outputs):
            assert not any(is_symbolic(d) for d in tensor.shape[1:])

    def test_symdim_identity(self):
        b = dyn("B", 32)
        assert isinstance(b, SymDim)
        assert b.name == "B" and b.hint == 32
        # SymDim subclasses int: equality compares hints, so cache keys
        # must go through canonical_dim, which never collides with ints.
        assert b == 32
        assert canonical_dim(b) != canonical_dim(32)
        assert canonical_dim(b) == ["dyn", "B", 32]


class TestDifferentialMatrix:
    """dynamic(batch) must equal crop(static_hint(pad(batch)))."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize(
        "dtype", [DType.f32, DType.s8], ids=["f32", "int8"]
    )
    @pytest.mark.parametrize("num_threads", [1, 4])
    @pytest.mark.parametrize("workload", sorted(CASES))
    def test_dynamic_matches_padded_static(
        self, workload, dtype, num_threads, executor
    ):
        cfg = CASES[workload]
        hint = cfg["hint"]
        options = CompilerOptions(executor=executor)
        # compile_graph mutates its graph (weights are blocked in
        # place), so each partition gets a freshly built graph.
        dynamic = compile_graph(
            cfg["build"](workload, dyn("B", hint), dtype),
            options=options,
            num_threads=num_threads,
        )
        static = compile_graph(
            cfg["build"](workload, hint, dtype),
            options=options,
            num_threads=num_threads,
        )
        # Weights are drawn once at the hint: partitions cache constant
        # inputs from their first feed, so the sweep must vary only the
        # per-batch activations.
        base = cfg["inputs"](workload, hint, dtype)
        for batch in cfg["batches"]:
            fresh = cfg["inputs"](workload, batch, dtype)
            dyn_feed, static_feed = pad_to_hint(fresh, base, batch, hint)
            got = list(dynamic.execute(dyn_feed).values())
            want = list(static.execute(static_feed).values())
            assert len(got) == len(want)
            for got_arr, want_arr in zip(got, want):
                assert got_arr.shape[0] == batch
                np.testing.assert_array_equal(got_arr, want_arr[:batch])
        dynamic.close()
        static.close()

    def test_one_partition_serves_every_batch(self):
        """No respecialization: the compiled object is reused as-is."""
        from repro import compile_counter

        with compile_counter() as counter:
            partition = compile_graph(
                build_mlp_graph("MLP_1", dyn("B", 32))
            )
        assert counter.count == 1
        base = make_mlp_inputs("MLP_1", 32)
        weights = {k: v for k, v in base.items() if k.startswith("w")}
        with compile_counter() as counter:
            for batch in (1, 3, 8, 17, 32):
                fresh = make_mlp_inputs("MLP_1", batch)
                out = partition.execute({**weights, "x": fresh["x"]})
                assert list(out.values())[0].shape[0] == batch
        assert counter.count == 0
        partition.close()
