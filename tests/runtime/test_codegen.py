"""The codegen executor: differential equivalence and satellites.

The whole-program codegen backend is only allowed to exist because it is
bit-identical to the interpreter AND the closure executor.  The
differential matrix (MLP/MHA x f32/int8 x 1/4 threads x three backends)
is the contract; the rest covers codegen unit behavior (deterministic
source, linecache registration, pooled buffers, source dumping) and the
executor-choice cache-isolation regression suite.
"""

import linecache
import traceback

import numpy as np
import pytest

from repro import CompilerOptions, DType, compile_graph
from repro.errors import ExecutionError
from repro.microkernel.machine import XEON_8358
from repro.runtime import (
    EXECUTOR_BACKENDS,
    CodegenExecutor,
    CompiledExecutor,
    Interpreter,
)
from repro.service import PartitionCache, graph_signature
from repro.tensor_ir import SliceRef, TirBuilder, TirModule
from repro.tensor_ir.stmt import full_slice
from repro.tuner.cache import tuning_key
from repro.workloads import (
    build_mha_graph,
    build_mlp_graph,
    make_mha_inputs,
    make_mlp_inputs,
)

WORKLOADS = {
    "MLP_1": (lambda dtype: build_mlp_graph("MLP_1", 16, dtype),
              lambda dtype: make_mlp_inputs("MLP_1", 16, dtype)),
    "MHA_1": (lambda dtype: build_mha_graph("MHA_1", 2, dtype),
              lambda dtype: make_mha_inputs("MHA_1", 2, dtype)),
}


def run_backend(workload, dtype, backend, num_threads):
    build, feed = WORKLOADS[workload]
    partition = compile_graph(
        build(dtype),
        options=CompilerOptions(executor=backend),
        num_threads=num_threads,
    )
    outputs, stats = partition.execute_with_stats(dict(feed(dtype)))
    partition.close()
    # Tensor names differ between independently built graphs (global id
    # counter), so equivalence is positional.
    return list(outputs.values()), stats


class TestDifferential:
    """All three backends must be indistinguishable on real workloads."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("dtype", [DType.f32, DType.s8],
                             ids=["f32", "int8"])
    @pytest.mark.parametrize("num_threads", [1, 4])
    def test_outputs_bit_identical_and_stats_match(
        self, workload, dtype, num_threads
    ):
        results = {
            backend: run_backend(workload, dtype, backend, num_threads)
            for backend in EXECUTOR_BACKENDS
        }
        ref_out, ref_stats = results["interpret"]
        for backend in ("compiled", "codegen"):
            got_out, got_stats = results[backend]
            assert len(ref_out) == len(got_out)
            for ref, got in zip(ref_out, got_out):
                np.testing.assert_array_equal(ref, got)
            ref_dict, got_dict = ref_stats.to_dict(), got_stats.to_dict()
            if num_threads == 1:
                assert ref_dict == got_dict, backend
            else:
                # peak_temp_bytes depends on thread interleaving; every
                # deterministic counter must still agree.
                for key in ref_dict:
                    if key != "peak_temp_bytes":
                        assert ref_dict[key] == got_dict[key], (
                            backend, key,
                        )

    def test_dynamic_oob_error_identical_across_backends(self):
        def build():
            b = TirBuilder("f")
            b.param("x", DType.f32, (6,))
            with b.for_("i", 4) as i:
                b.fill(SliceRef("x", (i * 2,), (2,)), 1.0)
            module = TirModule(entry="f")
            module.add(b.finish())
            return module

        messages = []
        for runner in (Interpreter, CompiledExecutor, CodegenExecutor):
            with pytest.raises(ExecutionError) as err:
                runner(build()).run(
                    {"x": np.zeros(6, dtype=np.float32)}
                )
            messages.append(str(err.value))
        assert messages[0] == messages[1] == messages[2]
        assert "out of bounds" in messages[0]


class TestCacheIsolation:
    """The executor choice must partition every cache namespace."""

    def test_graph_signatures_distinct_per_executor(self):
        signatures = {
            backend: graph_signature(
                build_mlp_graph("MLP_1", 16, DType.f32),
                XEON_8358,
                CompilerOptions(executor=backend),
            )
            for backend in EXECUTOR_BACKENDS
        }
        assert len(set(signatures.values())) == len(EXECUTOR_BACKENDS)

    def test_graph_signatures_distinct_with_tuning_enabled(self):
        signatures = {
            graph_signature(
                build_mlp_graph("MLP_1", 16, DType.f32),
                XEON_8358,
                CompilerOptions(executor=backend, tuning="model"),
            )
            for backend in EXECUTOR_BACKENDS
        }
        assert len(signatures) == len(EXECUTOR_BACKENDS)

    def test_partition_cache_never_shares_across_executors(self):
        cache = PartitionCache()
        compiles = []

        def compile_for(backend):
            def compile_fn():
                compiles.append(backend)
                return compile_graph(
                    build_mlp_graph("MLP_1", 16, DType.f32),
                    options=CompilerOptions(executor=backend),
                )

            return compile_fn

        partitions = {}
        for backend in EXECUTOR_BACKENDS:
            signature = graph_signature(
                build_mlp_graph("MLP_1", 16, DType.f32),
                XEON_8358,
                CompilerOptions(executor=backend),
            )
            partitions[backend] = cache.get_or_compile(
                signature, compile_for(backend)
            )
            # A second lookup with the same signature must hit, not
            # recompile.
            assert cache.get_or_compile(
                signature, compile_for(backend)
            ) is partitions[backend]
        assert compiles == list(EXECUTOR_BACKENDS)
        assert len(set(map(id, partitions.values()))) == 3

    def test_tuning_keys_distinct_per_executor(self):
        keys = {
            tuning_key(
                256, 256, 256, DType.f32, XEON_8358, executor=backend
            )
            for backend in EXECUTOR_BACKENDS
        }
        assert len(keys) == len(EXECUTOR_BACKENDS)
        # The default stays the compiled executor's namespace.
        assert tuning_key(256, 256, 256, DType.f32, XEON_8358) in {
            tuning_key(
                256, 256, 256, DType.f32, XEON_8358, executor="compiled"
            )
        }


def _fill_module(shape=(4, 8)):
    b = TirBuilder("f")
    b.param("x", DType.f32, shape)
    with b.for_("i", shape[0]) as i:
        b.fill(SliceRef("x", (i, 0), (1, shape[1])), 1.0)
    module = TirModule(entry="f")
    module.add(b.finish())
    return module


def _parallel_module():
    b = TirBuilder("f")
    b.param("x", DType.f32, (4, 8))
    with b.parallel_for("i", 4) as i:
        b.fill(SliceRef("x", (i, 0), (1, 8)), 2.0)
    with b.parallel_for("j", 4) as j:
        b.fill(SliceRef("x", (j, 0), (1, 8)), 3.0)
    module = TirModule(entry="f")
    module.add(b.finish())
    return module


class TestCodegenUnit:
    """Unit behavior of the source emitter and the generated programs."""

    def test_generated_source_is_deterministic(self):
        first = CodegenExecutor(_fill_module())
        second = CodegenExecutor(_fill_module())
        assert first.sources == second.sources
        assert first.filenames == second.filenames

    def test_sources_are_real_python_with_literal_loops(self):
        executor = CodegenExecutor(_fill_module())
        source = executor.source_for("f")
        assert "def _codegen_f(_ctx, t_x):" in source
        assert "for s_i in range(0, 4, 1):" in source
        compile(source, "<check>", "exec")  # must be valid Python

    def test_linecache_registration_and_traceback_lines(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.fill(SliceRef("x", (2,), (4,)), 1.0)  # static OOB: [2, 6)
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CodegenExecutor(module)  # build must not raise
        filename = executor.filenames["f"]
        assert filename.startswith("<repro-codegen:f:")
        try:
            executor.run({"x": np.zeros(4, dtype=np.float32)})
        except ExecutionError as exc:
            frames = traceback.extract_tb(exc.__traceback__)
        else:  # pragma: no cover - the run above must raise
            pytest.fail("static OOB did not raise at run time")
        generated = [f for f in frames if f.filename == filename]
        assert generated, "no traceback frame in generated code"
        # linecache serves the emitted line, so the frame shows source.
        assert "out of bounds" in generated[-1].line
        assert linecache.getline(filename, generated[-1].lineno).strip() \
            == generated[-1].line

    def test_static_oob_raises_at_run_not_build(self):
        b = TirBuilder("f")
        b.param("x", DType.f32, (4,))
        b.fill(SliceRef("x", (2,), (4,)), 1.0)
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CodegenExecutor(module)
        with pytest.raises(ExecutionError, match="out of bounds"):
            executor.run({"x": np.zeros(4, dtype=np.float32)})

    def test_entry_validation_matches_other_backends(self):
        module = _fill_module()
        executor = CodegenExecutor(module)
        with pytest.raises(ExecutionError, match="missing buffer 'x'"):
            executor.run({})
        with pytest.raises(ExecutionError, match="has shape"):
            executor.run({"x": np.zeros((5, 8), dtype=np.float32)})

    def test_pooled_temporaries_are_rezeroed(self):
        b = TirBuilder("f")
        b.param("out", DType.f32, (4,))
        tmp = b.alloc("tmp", DType.f32, (4,))
        b.compute(
            "add",
            full_slice("out", (4,)),
            [full_slice("out", (4,)), full_slice(tmp, (4,))],
        )
        b.fill(full_slice(tmp, (4,)), 9.0)  # poison before the free
        b.free(tmp)
        module = TirModule(entry="f")
        module.add(b.finish())
        executor = CodegenExecutor(module)
        for _ in range(3):
            out = np.ones(4, dtype=np.float32)
            executor.run({"out": out})
            np.testing.assert_array_equal(out, np.ones(4))

    def test_parallel_stats_match_interpreter_exactly(self):
        module = _parallel_module()
        interp = Interpreter(module)
        interp.run({"x": np.zeros((4, 8), dtype=np.float32)})
        x = np.zeros((4, 8), dtype=np.float32)
        stats = CodegenExecutor(module).run({"x": x})
        assert stats.to_dict() == interp.stats.to_dict()
        assert np.all(x == 3.0)

    def test_dump_sources_writes_every_function(self, tmp_path):
        executor = CodegenExecutor(_fill_module())
        paths = executor.dump_sources(str(tmp_path))
        assert len(paths) == len(executor.sources)
        for path in paths:
            content = open(path, encoding="utf-8").read()
            assert "generated by repro.runtime.codegen" in content

    def test_dump_env_var_writes_on_build(self, tmp_path, monkeypatch):
        target = tmp_path / "emitted"
        monkeypatch.setenv("REPRO_DUMP_CODEGEN", str(target))
        CodegenExecutor(_fill_module())
        written = list(target.glob("*.py"))
        assert written, "REPRO_DUMP_CODEGEN did not write sources"

    def test_codegen_selectable_via_options(self):
        partition = compile_graph(
            build_mlp_graph("MLP_1", 16, DType.f32),
            options=CompilerOptions(executor="codegen"),
        )
        assert partition.executor == "codegen"
        feed = make_mlp_inputs("MLP_1", 16, DType.f32)
        outputs = partition.execute(dict(feed))
        assert outputs
        partition.close()

    def test_session_executor_override_accepts_codegen(self):
        from repro.service import InferenceSession

        feed = make_mlp_inputs("MLP_1", 16, DType.f32)
        outs = []
        for backend in ("compiled", "codegen"):
            probe = InferenceSession.for_workload(
                "MLP_1", executor=backend
            )
            weights = {name: feed[name] for name in probe.weight_names}
            session = InferenceSession.for_workload(
                "MLP_1", weights=weights, executor=backend
            )
            inputs = {name: feed[name] for name in session.input_names}
            outs.append(list(session.run(inputs).values()))
        for ref, got in zip(*outs):
            np.testing.assert_array_equal(ref, got)
