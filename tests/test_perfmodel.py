"""Tests for the performance model (timing simulator and spec builders)."""

import numpy as np
import pytest

from repro import CompilerOptions, DType, XEON_8358, compile_graph
from repro.dtypes import DType as DT
from repro.perfmodel import (
    KernelSpec,
    MachineSimulator,
    TensorAccess,
    specs_for_partition,
)
from repro.perfmodel.report import format_speedup_table, geomean
from repro.workloads import build_mha_graph, build_mlp_graph


class TestSimulatorPricing:
    def test_compute_scales_with_flops(self):
        sim = MachineSimulator(XEON_8358)
        small = sim.run(KernelSpec(name="s", flops=1e6, launches=0))
        large = sim.run(KernelSpec(name="l", flops=1e8, launches=0))
        assert large.compute_cycles == pytest.approx(
            small.compute_cycles * 100
        )

    def test_int8_faster_than_fp32(self):
        sim = MachineSimulator(XEON_8358)
        f = sim.run(KernelSpec(name="f", flops=1e8, dtype=DT.f32, launches=0))
        i = sim.run(KernelSpec(name="i", flops=1e8, dtype=DT.s8, launches=0))
        assert i.compute_cycles == pytest.approx(f.compute_cycles / 4)

    def test_efficiency_and_balance_inflate_cost(self):
        sim = MachineSimulator(XEON_8358)
        ideal = sim.run(KernelSpec(name="a", flops=1e8, launches=0))
        poor = sim.run(
            KernelSpec(
                name="b", flops=1e8, efficiency=0.5, balance=0.5, launches=0
            )
        )
        assert poor.compute_cycles == pytest.approx(ideal.compute_cycles * 4)

    def test_overheads(self):
        sim = MachineSimulator(XEON_8358)
        t = sim.run(
            KernelSpec(name="o", launches=2, light_syncs=4, api_calls=3)
        )
        expected = (
            2 * XEON_8358.barrier_cycles
            + 4 * XEON_8358.barrier_cycles * 0.125
            + 3 * XEON_8358.api_call_cycles
        )
        assert t.overhead_cycles == pytest.approx(expected)

    def test_transcendental_more_expensive(self):
        sim = MachineSimulator(XEON_8358)
        cheap = sim.run(
            KernelSpec(name="c", eltwise_elems=1e7, launches=0)
        )
        costly = sim.run(
            KernelSpec(name="t", transcendental_elems=1e7, launches=0)
        )
        assert costly.compute_cycles > cheap.compute_cycles * 3


class TestResidency:
    def test_cold_read_from_dram_then_warm(self):
        sim = MachineSimulator(XEON_8358)
        nbytes = 1 << 20
        spec = KernelSpec(
            name="k", reads=[TensorAccess("t", nbytes)], launches=0
        )
        cold = sim.run(spec).memory_cycles
        warm = sim.run(spec).memory_cycles
        assert warm < cold  # promoted to L2 after the first touch

    def test_warm_method(self):
        sim = MachineSimulator(XEON_8358)
        sim.warm("w", 1 << 20)
        assert sim.level_name_of("w") == "L2"

    def test_big_tensor_lands_in_lower_level(self):
        sim = MachineSimulator(XEON_8358)
        sim.warm("huge", 1 << 30)  # 1 GiB fits nothing but DRAM
        assert sim.level_name_of("huge") == "DRAM"

    def test_capacity_eviction_cascade(self):
        sim = MachineSimulator(XEON_8358)
        # Fill L2 (20 MiB effective) with three 8 MiB tensors.
        for name in ("a", "b", "c"):
            sim.warm(name, 8 << 20)
        # The least recently used tensor cascaded to L3.
        assert sim.level_name_of("a") == "L3"
        assert sim.level_name_of("c") == "L2"

    def test_hint_overrides_residency(self):
        sim = MachineSimulator(XEON_8358)
        nbytes = 64 << 20
        hinted = sim.run(
            KernelSpec(
                name="h",
                reads=[TensorAccess("x", nbytes, hint="L1")],
                launches=0,
            )
        )
        unhinted = sim.run(
            KernelSpec(
                name="u",
                reads=[TensorAccess("y", nbytes)],
                launches=0,
            )
        )
        assert hinted.memory_cycles < unhinted.memory_cycles


class TestPartitionSpecs:
    def test_one_dispatch_and_per_item_launches(self):
        partition = compile_graph(
            build_mlp_graph("MLP_1", 64, DType.f32),
            options=CompilerOptions.no_coarse_fusion(),
        )
        specs, warm = specs_for_partition(partition, XEON_8358)
        assert specs[0].name == "partition_dispatch"
        assert specs[0].api_calls == 1
        fused = [s for s in specs if s.name.startswith("fused_")]
        assert len(fused) == 3
        assert all(s.launches == 1 for s in fused)
        assert all(s.api_calls == 0 for s in fused)

    def test_merged_members_use_light_syncs(self):
        partition = compile_graph(build_mlp_graph("MLP_1", 64, DType.f32))
        specs, _ = specs_for_partition(partition, XEON_8358)
        fused = [s for s in specs if s.name.startswith("fused_")]
        launches = sum(s.launches for s in fused)
        light = sum(s.light_syncs for s in fused)
        assert launches < 3
        assert light >= 1

    def test_warm_set_covers_cached_weights(self):
        partition = compile_graph(build_mlp_graph("MLP_1", 64, DType.s8))
        _, warm = specs_for_partition(partition, XEON_8358)
        assert len(warm) >= 3

    def test_padded_flops_charged(self):
        """The k=13 entry layer pays for its padding in flops."""
        partition = compile_graph(build_mlp_graph("MLP_1", 64, DType.f32))
        specs, _ = specs_for_partition(partition, XEON_8358)
        first = next(s for s in specs if s.name.startswith("fused_"))
        logical = 2 * 64 * 13 * 512
        assert first.flops > logical  # padded k >= 16

    def test_fused_postops_counted_as_eltwise(self):
        partition = compile_graph(build_mha_graph("MHA_1", 32, DType.f32))
        specs, _ = specs_for_partition(partition, XEON_8358)
        attention = [s for s in specs if s.name.startswith("fused_")][0]
        assert attention.transcendental_elems > 0  # exp, div
        assert attention.eltwise_elems > 0  # add, sub, reductions


class TestReport:
    def test_format_table(self):
        text = format_speedup_table(
            "T", [{"a": 1.234, "b": "x"}], ["a", "b"]
        )
        assert "1.23" in text and "T" in text

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(geomean([]))
