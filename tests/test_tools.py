"""Tests for the dump CLI tool."""

import pytest

from repro.tools.dump import main


class TestDumpTool:
    def test_single_matmul(self, capsys):
        assert main(["--matmul", "64x64x64"]) == 0
        out = capsys.readouterr().out
        assert "optimized Graph IR" in out
        assert "pass log" in out

    def test_tir_flag(self, capsys):
        main(["--matmul", "64x64x64", "--tir"])
        out = capsys.readouterr().out
        assert "batch_reduce_gemm" in out

    def test_perf_flag(self, capsys):
        main(["--matmul", "64x64x64", "--perf"])
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_workload(self, capsys):
        main(["--workload", "MLP_1", "--batch", "32", "--dtype", "int8"])
        out = capsys.readouterr().out
        assert "init graph" in out  # weight preprocessing present

    def test_no_coarse(self, capsys):
        main(["--workload", "MLP_1", "--batch", "32", "--no-coarse"])
        out = capsys.readouterr().out
        assert "merged groups" not in out

    def test_bad_matmul_spec(self):
        with pytest.raises(SystemExit):
            main(["--matmul", "64by64"])

    def test_bad_workload(self):
        with pytest.raises(SystemExit):
            main(["--workload", "NOPE"])


class TestBenchTool:
    def test_fig8_mlp_subset(self, capsys):
        from repro.tools.bench import main as bench_main

        assert bench_main(
            ["fig8-mlp", "--workload", "MLP_1", "--batches", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 8 (MLP)" in out
        assert "geomean" in out

    def test_fig8_mha_subset(self, capsys):
        from repro.tools.bench import main as bench_main

        bench_main(["fig8-mha", "--dtype", "int8", "--batches", "32"])
        out = capsys.readouterr().out
        assert "Figure 8 (MHA)" in out

    def test_bad_figure(self):
        from repro.tools.bench import main as bench_main

        with pytest.raises(SystemExit):
            bench_main(["fig9"])

    def test_cache_stats_flag(self, capsys):
        from repro.tools.bench import main as bench_main

        assert bench_main(
            ["fig8-mlp", "--workload", "MLP_1", "--batches", "32",
             "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "ServiceStats" in out
        assert "compiles=" in out
        assert "mlp_1_b32" in out  # per-signature labels

    def test_trace_and_metrics_flags(self, capsys, tmp_path):
        from repro.observability import (
            disable_tracing,
            get_tracer,
            validate_chrome_trace_file,
        )
        from repro.tools.bench import main as bench_main

        path = tmp_path / "trace.json"
        try:
            assert bench_main(
                ["fig8-mlp", "--workload", "MLP_1", "--batches", "8",
                 "--trace", str(path), "--metrics"]
            ) == 0
        finally:
            disable_tracing()
            get_tracer().clear()
        out = capsys.readouterr().out
        assert "top passes" in out
        assert "top ops" in out
        assert "brgemm reconciliation" in out
        assert "wrote" in out and "trace events" in out
        assert validate_chrome_trace_file(str(path)) == []

    def test_dump_trace_and_metrics_flags(self, capsys, tmp_path):
        from repro.observability import (
            disable_tracing,
            get_tracer,
            validate_chrome_trace_file,
        )

        path = tmp_path / "trace.json"
        try:
            assert main(
                ["--matmul", "64x64x64", "--trace", str(path), "--metrics"]
            ) == 0
        finally:
            disable_tracing()
            get_tracer().clear()
        out = capsys.readouterr().out
        assert "top passes" in out
        assert validate_chrome_trace_file(str(path)) == []


class TestRuntimeBench:
    def test_quick_runtime_bench_writes_valid_json(self, capsys, tmp_path):
        import json

        from repro.tools.bench import main as bench_main
        from repro.tools.bench import validate_bench_runtime

        path = tmp_path / "BENCH_runtime.json"
        assert bench_main(
            ["runtime", "--quick", "--repeat", "1", "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Runtime backends" in out
        assert "geomean" in out
        document = json.loads(path.read_text())
        assert validate_bench_runtime(document) == []
        assert document["schema"] == "repro.bench_runtime/v1"
        assert document["executors"] == ["interpret", "compiled"]
        for entry in document["workloads"]:
            assert entry["identical"] is True
            assert entry["speedup"] > 0

    def test_single_backend_run(self, capsys, tmp_path):
        import json

        from repro.tools.bench import main as bench_main

        path = tmp_path / "runtime.json"
        assert bench_main(
            ["runtime", "--quick", "--repeat", "1",
             "--executor", "compiled", "--json", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["executors"] == ["compiled"]
        for entry in document["workloads"]:
            assert "compiled_ms" in entry
            assert "speedup" not in entry

    def test_validator_rejects_malformed_documents(self):
        from repro.tools.bench import validate_bench_runtime

        assert validate_bench_runtime({"schema": "nope"}) != []
        bad = {
            "schema": "repro.bench_runtime/v1",
            "machine": "XEON_8358",
            "dtype": "f32",
            "num_threads": 1,
            "repeat": 1,
            "executors": ["interpret", "compiled"],
            "workloads": [
                {
                    "group": "fig8-mlp",
                    "name": "MLP_1_b32",
                    "interpret_ms": 1.0,
                    "compiled_ms": -2.0,  # non-positive latency
                    "identical": False,  # paired run must be identical
                }
            ],
            "geomean_speedup": {},
        }
        errors = validate_bench_runtime(bad)
        assert any("compiled_ms" in e for e in errors)
        assert any("identical" in e for e in errors)
        assert any("speedup" in e for e in errors)


class TestServingBench:
    def test_quick_serving_bench_writes_valid_json(self, capsys, tmp_path):
        import json

        from repro.tools.bench import main as bench_main
        from repro.tools.bench import validate_bench_serving

        path = tmp_path / "BENCH_serving.json"
        assert bench_main(
            ["serve", "--quick", "--clients", "4", "--requests", "3",
             "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Serving" in out
        assert "BatchingStats" in out
        assert "geomean speedup" in out
        document = json.loads(path.read_text())
        assert validate_bench_serving(document) == []
        assert document["schema"] == "repro.bench_serving/v2"
        assert document["modes"] == ["unbatched", "batched"]
        assert "_batching_stats" not in document  # transient key stripped
        assert "_worker_spans" not in document
        sharding = document["sharding"]
        assert sharding["workers"] == [1]  # default: no extra workers
        assert sharding["identical"] is True
        assert sharding["speedup"] == 1.0
        assert isinstance(sharding["host_cpus"], int)
        for entry in document["workloads"]:
            assert entry["identical"] is True
            batching = entry["batched"]["batching"]
            assert batching["completed"] >= 4 * 3
            assert batching["coalesce_ratio"] >= 1.0
            for mode in ("unbatched", "batched"):
                latency = entry[mode]["latency_ms"]
                assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_serving_metrics_and_trace_flags(self, capsys, tmp_path):
        import json

        from repro.observability import MetricsRegistry, set_registry
        from repro.tools.bench import main as bench_main

        set_registry(MetricsRegistry())
        trace = tmp_path / "serve_trace.json"
        try:
            assert bench_main(
                ["serve", "--quick", "--clients", "2", "--requests", "2",
                 "--json", str(tmp_path / "s.json"),
                 "--metrics", "--trace", str(trace)]
            ) == 0
        finally:
            out = capsys.readouterr().out
            set_registry(MetricsRegistry())
        assert "service.batch.size" in out
        assert "service.batch.queue_wait_seconds" in out
        events = json.loads(trace.read_text())["traceEvents"]
        names = {e.get("name") for e in events}
        assert "batch.collect" in names
        assert "batch.execute" in names

    def test_unknown_serve_workload_rejected(self):
        from repro.tools.bench import main as bench_main

        with pytest.raises(SystemExit):
            bench_main(["serve", "--quick", "--workload", "MHA_1"])

    def test_min_speedup_gate(self, tmp_path, capsys):
        from repro.tools.bench import main as bench_main

        # An impossible floor must fail the run (non-zero exit).
        code = bench_main(
            ["serve", "--quick", "--clients", "2", "--requests", "2",
             "--json", str(tmp_path / "s.json"),
             "--min-speedup", "1e9"]
        )
        capsys.readouterr()
        assert code == 1

    def test_sharded_quick_bench_writes_scaling_curve(
        self, capsys, tmp_path
    ):
        import json

        from repro.service import live_segments
        from repro.tools.bench import main as bench_main
        from repro.tools.bench import validate_bench_serving

        path = tmp_path / "BENCH_serving.json"
        assert bench_main(
            ["serve", "--quick", "--workers", "2", "--clients", "2",
             "--requests", "2", "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded fleet" in out
        assert "sharded speedup" in out
        document = json.loads(path.read_text())
        assert validate_bench_serving(document) == []
        sharding = document["sharding"]
        assert sharding["workers"] == [1, 2]
        assert sharding["max_workers"] == 2
        assert sharding["identical"] is True
        assert len(sharding["curve"]) == 2
        for point in sharding["curve"]:
            assert point["throughput_rps"] > 0
            assert point["identical"] is True
        two = sharding["curve"][-1]
        assert two["workers"] == 2
        assert two["placement"]  # signatures homed across the fleet
        # Nothing leaked: every shm segment was unlinked on close.
        assert live_segments() == []

    def test_validator_accepts_legacy_v1_document(self):
        from repro.tools.bench import validate_bench_serving

        legacy = {
            "schema": "repro.bench_serving/v1",
            "machine": "XEON_8358",
            "dtype": "f32",
            "clients": 8,
            "requests_per_client": 4,
            "batch_sizes": [1, 2, 4, 8],
            "buckets": [32],
            "max_batch": 32,
            "batch_timeout_us": 2000,
            "seed": 0,
            "modes": ["unbatched", "batched"],
            "workloads": [
                {
                    "name": "MLP_1",
                    "unbatched": {
                        "throughput_rps": 10.0,
                        "latency_ms": {"p50": 1.0},
                    },
                    "batched": {
                        "throughput_rps": 20.0,
                        "latency_ms": {"p50": 1.0},
                        "batching": {"completed": 32},
                    },
                    "identical": True,
                    "speedup": 2.0,
                }
            ],
            "geomean_speedup": 2.0,
        }
        # No sharding section required for v1.
        assert validate_bench_serving(legacy) == []

    def test_validator_rejects_malformed_documents(self):
        from repro.tools.bench import validate_bench_serving

        assert validate_bench_serving({"schema": "nope"}) != []
        bad = {
            "schema": "repro.bench_serving/v1",
            "machine": "XEON_8358",
            "dtype": "f32",
            "clients": 8,
            "requests_per_client": 4,
            "batch_sizes": [1, 2, 4, 8],
            "buckets": [32],
            "max_batch": 32,
            "batch_timeout_us": 2000,
            "seed": 0,
            "modes": ["unbatched", "batched"],
            "workloads": [
                {
                    "name": "MLP_1",
                    "unbatched": {
                        "throughput_rps": -1.0,  # non-positive
                        "latency_ms": {"p50": 1.0},
                    },
                    "batched": {
                        "throughput_rps": 10.0,
                        "latency_ms": {"p50": 1.0},
                        # no "batching" stats block
                    },
                    "identical": False,  # paired run must be identical
                }
            ],
            "geomean_speedup": 1.0,
        }
        errors = validate_bench_serving(bad)
        assert any("throughput_rps" in e for e in errors)
        assert any("batching" in e for e in errors)
        assert any("speedup" in e for e in errors)
        assert any("identical" in e for e in errors)
        # v2 additionally demands a sharding section with a curve.
        bad_v2 = dict(bad, schema="repro.bench_serving/v2")
        assert any(
            "sharding" in e for e in validate_bench_serving(bad_v2)
        )
        bad_v2["sharding"] = {
            "curve": [
                {
                    "workers": 2,
                    "throughput_rps": 5.0,
                    "latency_ms": {"p50": 1.0},
                    "identical": False,  # sharded outputs must match
                }
            ],
            "speedup": "fast",  # not a number
        }
        errors = validate_bench_serving(bad_v2)
        assert any("identical" in e and "curve" in e for e in errors)
        assert any("sharding.speedup" in e for e in errors)
