"""Tests for the Table 1 workload generators."""

import numpy as np
import pytest

from repro.dtypes import DType
from repro.graph_ir.reference import evaluate_graph
from repro.workloads import (
    MHA_BATCH_SIZES,
    MHA_CONFIGS,
    MLP_BATCH_SIZES,
    MLP_CONFIGS,
    build_mha_graph,
    build_mlp_graph,
    individual_matmul_shapes,
    make_mha_inputs,
    make_mlp_inputs,
)
from repro.workloads.mlp import mlp_layer_shapes


class TestMlpWorkloads:
    def test_table1_dims(self):
        assert MLP_CONFIGS["MLP_1"] == (13, 512, 256, 128)
        assert MLP_CONFIGS["MLP_2"] == (479, 1024, 1024, 512, 256, 1)

    @pytest.mark.parametrize("name", ["MLP_1", "MLP_2"])
    def test_fp32_graph_structure(self, name):
        graph = build_mlp_graph(name, 32, DType.f32)
        dims = MLP_CONFIGS[name]
        matmuls = [op for op in graph.ops if op.kind == "matmul"]
        relus = [op for op in graph.ops if op.kind == "relu"]
        assert len(matmuls) == len(dims) - 1
        assert len(relus) == len(dims) - 1
        assert graph.outputs[0].shape == (32, dims[-1])

    def test_int8_graph_has_quantization(self):
        graph = build_mlp_graph("MLP_1", 32, DType.s8)
        kinds = {op.kind for op in graph.ops}
        assert "dequantize" in kinds
        assert "quantize" in kinds
        assert graph.inputs[0].dtype == DType.u8

    def test_fp32_executes(self):
        graph = build_mlp_graph("MLP_1", 32, DType.f32)
        inputs = make_mlp_inputs("MLP_1", 32, DType.f32)
        out = evaluate_graph(graph, inputs)
        assert list(out.values())[0].shape == (32, 128)

    def test_int8_executes(self):
        graph = build_mlp_graph("MLP_1", 32, DType.s8)
        inputs = make_mlp_inputs("MLP_1", 32, DType.s8)
        out = list(evaluate_graph(graph, inputs).values())[0]
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_inputs_seeded(self):
        a = make_mlp_inputs("MLP_1", 32, DType.f32, seed=7)
        b = make_mlp_inputs("MLP_1", 32, DType.f32, seed=7)
        np.testing.assert_array_equal(a["x"], b["x"])

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            build_mlp_graph("MLP_1", 32, DType.s64)

    def test_layer_shapes(self):
        shapes = mlp_layer_shapes("MLP_1", 64)
        assert shapes == [(64, 13, 512), (64, 512, 256), (64, 256, 128)]


class TestMhaWorkloads:
    def test_table1_configs(self):
        cfg = MHA_CONFIGS["MHA_4"]
        assert (cfg.seq_len, cfg.hidden, cfg.heads) == (512, 1024, 16)
        assert cfg.head_dim == 64

    @pytest.mark.parametrize("name", list(MHA_CONFIGS))
    def test_fp32_graph_structure(self, name):
        cfg = MHA_CONFIGS[name]
        graph = build_mha_graph(name, 32, DType.f32)
        matmuls = [op for op in graph.ops if op.kind == "matmul"]
        assert len(matmuls) == 2
        assert any(op.kind == "softmax" for op in graph.ops)
        assert graph.outputs[0].shape == (
            32, cfg.heads, cfg.seq_len, cfg.head_dim
        )

    def test_fp32_attention_rows_normalize(self):
        graph = build_mha_graph("MHA_1", 4, DType.f32)
        # Feed V = broadcast identity to recover probabilities.
        inputs = make_mha_inputs("MHA_1", 4, DType.f32)
        cfg = MHA_CONFIGS["MHA_1"]
        inputs["v"] = np.broadcast_to(
            np.eye(cfg.seq_len, cfg.head_dim, dtype=np.float32),
            (4, cfg.heads, cfg.seq_len, cfg.head_dim),
        ).copy()
        out = list(evaluate_graph(graph, inputs).values())[0]
        sums = out.sum(-1)
        # head_dim < seq_len truncates the identity; sums stay <= 1.
        assert np.all(sums <= 1.0 + 1e-5)

    def test_int8_graph_symmetric(self):
        graph = build_mha_graph("MHA_2", 32, DType.s8)
        deq = [op for op in graph.ops if op.kind == "dequantize"]
        assert all(op.attr("zero_point", 0) == 0 for op in deq)

    def test_int8_executes(self):
        graph = build_mha_graph("MHA_1", 4, DType.s8)
        inputs = make_mha_inputs("MHA_1", 4, DType.s8)
        out = list(evaluate_graph(graph, inputs).values())[0]
        assert np.isfinite(out).all()


class TestMatmulShapes:
    def test_count(self):
        # (3 MLP_1 layers + 5 MLP_2 layers) x 5 batches.
        assert len(individual_matmul_shapes()) == 40

    def test_includes_pathological_shapes(self):
        shapes = individual_matmul_shapes()
        assert any(s.k == 479 for s in shapes)
        assert any(s.k == 13 for s in shapes)
        assert any(s.n == 1 for s in shapes)

    def test_macs(self):
        shape = individual_matmul_shapes()[0]
        assert shape.macs == shape.m * shape.k * shape.n
